package runtime

import "time"

// Busy-rejection backoff bounds. minBackoff is the absolute floor of a
// non-zero window; hardMaxBackoff is a safety ceiling no adaptive state
// may exceed (an agent asleep for milliseconds would throttle quiescence
// detection far past any plausible contention level).
const (
	minBackoff     = 2 * time.Microsecond
	hardMaxBackoff = 2048 * time.Microsecond
)

// rejectionRateShift is the EWMA weight of the observed busy-rejection
// rate: rate += (observation − rate) / 2^shift, in 16.16 fixed point.
// A shift of 4 (α = 1/16) remembers roughly the last 16 initiations —
// long enough to smooth select jitter, short enough to track phase
// changes (a neighbour finishing its exchange) within tens of ops.
const (
	rejectionRateShift = 4
	rateOne            = 1 << 16 // fixed-point 1.0
)

// AIMD derives an agent's busy-backoff window from its OBSERVED
// rejection rate instead of the fixed [2µs, 512µs] doubling ladder the
// runtime previously used (ROADMAP item "adaptive backoff tuning").
//
// Two pieces compose:
//
//   - The CEILING adapts to pressure: an EWMA of the busy-rejection rate
//     scales the maximum window between minBackoff (an agent whose
//     initiations almost always land needs only a nudge of
//     desynchronization) and hardMaxBackoff (an agent in a high-degree
//     neighbourhood where most partners are mid-exchange backs off much
//     further before retrying). The fixed 512µs ceiling was tuned for
//     rings; rejection probability grows with degree, which is exactly
//     the regime a measured rate tracks and a constant cannot.
//
//   - The WINDOW moves AIMD-style under that ceiling: multiplicative
//     increase (×2) on every rejection — clashes need exponential
//     spreading, as in CSMA — and additive decrease (−minBackoff) on
//     every completed exchange, instead of the old reset-to-zero. The
//     additive decrease keeps memory of recent contention: after one
//     success amid a busy storm the old policy restarted its ladder from
//     2µs and re-collided immediately; AIMD drains the window gradually,
//     so the agent stays polite while the neighbourhood is still hot and
//     converges back to minimum backoff as it cools.
//
// The controller is scheduling state only: it decides WHEN an agent
// retries, never what it computes, so results (final multiset, target,
// conservation verdicts) are unchanged for any controller behaviour —
// the GOMAXPROCS(1) async golden test pins exactly the fields that must
// not move. The zero value is ready to use (empty history, zero window).
type AIMD struct {
	// rate is the EWMA'd busy-rejection probability in 16.16 fixed point
	// (0 … rateOne).
	rate int64
	// window is the current backoff window; the actual sleep is uniform
	// in (0, window] so clashing agents desynchronize.
	window time.Duration
}

// observe folds one initiation outcome into the rejection-rate EWMA.
func (b *AIMD) observe(rejected bool) {
	sample := int64(0)
	if rejected {
		sample = rateOne
	}
	b.rate += (sample - b.rate) >> rejectionRateShift
}

// ceiling maps the observed rejection rate onto [minBackoff,
// hardMaxBackoff] linearly: no observed contention → the floor, every
// initiation rejected → the hard ceiling.
func (b *AIMD) ceiling() time.Duration {
	c := minBackoff + time.Duration(b.rate*int64(hardMaxBackoff-minBackoff)>>16)
	if c > hardMaxBackoff {
		c = hardMaxBackoff
	}
	return c
}

// onRejected records a busy rejection and returns the new window the
// agent should draw its sleep from: multiplicative increase, clamped to
// the rate-derived ceiling.
func (b *AIMD) OnRejected() time.Duration {
	b.observe(true)
	switch {
	case b.window < minBackoff:
		b.window = minBackoff
	default:
		b.window *= 2
	}
	if c := b.ceiling(); b.window > c {
		b.window = c
	}
	return b.window
}

// onSuccess records a completed exchange: additive decrease of the
// window (never below zero — a zero window means "initiate immediately",
// the cold-start state).
func (b *AIMD) OnSuccess() {
	b.observe(false)
	if b.window <= minBackoff {
		b.window = 0
	} else {
		b.window -= minBackoff
	}
}

// fixedLadderCeiling is the legacy controller's constant maximum window —
// the value the AIMD controller's adaptive ceiling replaced.
const fixedLadderCeiling = 512 * time.Microsecond

// fixedLadder is the pre-AIMD backoff policy, retained verbatim as the
// baseline for the backoff field-validation study
// (Options.FixedBackoff, EXPERIMENTS.md appendix): double the window
// from minBackoff up to a constant 512µs ceiling on every rejection,
// reset it to zero on any completed exchange. Its two weaknesses are
// exactly what the study measures — the constant ceiling was tuned for
// ring-degree contention and saturates far too low on high-degree
// graphs, and the reset-to-zero forgets a hot neighbourhood after a
// single success and immediately re-collides.
type fixedLadder struct{ window time.Duration }

func (l *fixedLadder) OnRejected() time.Duration {
	if l.window < minBackoff {
		l.window = minBackoff
	} else {
		l.window *= 2
	}
	if l.window > fixedLadderCeiling {
		l.window = fixedLadderCeiling
	}
	return l.window
}

func (l *fixedLadder) OnSuccess() { l.window = 0 }
