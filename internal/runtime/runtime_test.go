package runtime

import (
	goruntime "runtime"
	"testing"
	"time"

	"repro/internal/dynamics"
	"repro/internal/graph"
	ms "repro/internal/multiset"
	"repro/internal/problems"
)

func opts() Options {
	return Options{Seed: 1, LinkUpProbability: 1, Timeout: 20 * time.Second}
}

func TestMinAsync(t *testing.T) {
	g := graph.Ring(8)
	vals := []int{9, 4, 7, 1, 8, 2, 6, 5}
	res, err := Run[int](problems.NewMin(), g, vals, opts())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: final=%v after %d ops", res.Final, res.Ops)
	}
	for _, v := range res.Final {
		if v != 1 {
			t.Errorf("final = %v", res.Final)
		}
	}
	if res.ProperSteps == 0 {
		t.Error("no proper steps recorded")
	}
}

func TestMinAsyncUnderChurn(t *testing.T) {
	g := graph.Ring(8)
	vals := []int{9, 4, 7, 1, 8, 2, 6, 5}
	o := opts()
	o.LinkUpProbability = 0.3
	res, err := Run[int](problems.NewMin(), g, vals, o)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge under churn: %v", res.Final)
	}
}

func TestSumAsyncConservesTotal(t *testing.T) {
	// Sum over the complete graph: the paper's §4.2 assumption. The final
	// multiset must be exactly {total, 0, …, 0} — conservation at
	// quiescence despite transiently inconsistent views.
	g := graph.Complete(6)
	vals := []int{3, 1, 5, 2, 7, 4} // total 22
	res, err := Run[int](problems.NewSum(), g, vals, opts())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("sum did not converge: %v", res.Final)
	}
	if !ms.OfInts(res.Final...).Equal(ms.OfInts(22, 0, 0, 0, 0, 0)) {
		t.Errorf("final = %v, want {22,0,0,0,0,0}", res.Final)
	}
}

func TestAverageAsync(t *testing.T) {
	g := graph.Complete(5)
	vals := []float64{1, 2, 3, 4, 10}
	p := problems.NewAverage(1e-6)
	res, err := Run[float64](p, g, vals, opts())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("average did not converge: %v", res.Final)
	}
	for _, v := range res.Final {
		if d := v - 4; d > 1e-5 || d < -1e-5 {
			t.Errorf("final value %g far from mean 4", v)
		}
	}
}

func TestSortingAsync(t *testing.T) {
	vals := []int{4, 1, 3, 0, 2}
	p, err := problems.NewSorting(vals)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Line(5)
	res, err := Run[problems.Item](p, g, problems.InitialItems(vals), opts())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("sorting did not converge: %v", res.Final)
	}
	for i, it := range res.Final {
		if it.Index != i || it.Value != i {
			t.Errorf("final[%d] = %v", i, it)
		}
	}
}

func TestHullAsync(t *testing.T) {
	pts := problems.Fig2Configuration()
	p := problems.NewHull(pts)
	g := graph.Ring(len(pts))
	res, err := Run[problems.HullState](p, g, problems.InitialHulls(pts), opts())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("hull did not converge asynchronously")
	}
}

func TestMinPairAsync(t *testing.T) {
	vals := []int{3, 5, 3, 7}
	p := problems.NewMinPair(len(vals), 10)
	g := graph.Complete(4)
	res, err := Run[problems.Pair](p, g, problems.InitialPairs(vals), opts())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("min-pair did not converge: %v", res.Final)
	}
	for _, pr := range res.Final {
		if pr != (problems.Pair{X: 3, Y: 5}) {
			t.Errorf("final = %v", res.Final)
		}
	}
}

func TestAlreadyConvergedAsync(t *testing.T) {
	g := graph.Ring(3)
	res, err := Run[int](problems.NewMin(), g, []int{2, 2, 2}, opts())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Ops != 0 {
		t.Errorf("converged=%v ops=%d", res.Converged, res.Ops)
	}
}

func TestValidationAsync(t *testing.T) {
	g := graph.Ring(3)
	if _, err := Run[int](problems.NewMin(), g, []int{1}, opts()); err == nil {
		t.Error("mismatched state count accepted")
	}
	if _, err := Run[int](problems.NewMin(), graph.Line(0), nil, opts()); err == nil {
		t.Error("empty system accepted")
	}
}

func TestBudgetStops(t *testing.T) {
	// An impossible goal (isolated vertices) must stop at the op budget.
	g, err := graph.New("islands", 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	o := opts()
	o.MaxOps = 50
	o.Timeout = 2 * time.Second
	res, err := Run[int](problems.NewMin(), g, []int{3, 1, 2, 4}, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("converged without any edges")
	}
}

func TestAsyncDeterministicConvergenceValue(t *testing.T) {
	// Regardless of interleaving, min consensus must land on the same
	// value every run (the target is interleaving-independent).
	g := graph.Complete(6)
	vals := []int{8, 3, 9, 5, 4, 7}
	for seed := int64(0); seed < 5; seed++ {
		o := opts()
		o.Seed = seed
		res, err := Run[int](problems.NewMin(), g, vals, o)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("seed %d did not converge", seed)
		}
		for _, v := range res.Final {
			if v != 3 {
				t.Fatalf("seed %d final %v", seed, res.Final)
			}
		}
	}
}

func TestSumAsyncUnderChurn(t *testing.T) {
	// The §4.2 problem on its required complete graph with links flapping:
	// conservation at quiescence must still hold exactly.
	g := graph.Complete(5)
	vals := []int{4, 1, 6, 2, 7} // total 20
	o := opts()
	o.LinkUpProbability = 0.5
	o.Timeout = 30 * time.Second
	res, err := Run[int](problems.NewSum(), g, vals, o)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("sum did not converge under churn: %v", res.Final)
	}
	total := 0
	for _, v := range res.Final {
		total += v
	}
	if total != 20 {
		t.Fatalf("conservation broken: final %v sums to %d", res.Final, total)
	}
}

func TestSetUnionAsync(t *testing.T) {
	g := graph.Ring(6)
	init := []problems.Set{
		problems.SetOf(0), problems.SetOf(1), problems.SetOf(2),
		problems.SetOf(3), problems.SetOf(4), problems.SetOf(5),
	}
	res, err := Run[problems.Set](problems.NewSetUnion(), g, init, opts())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("set-union async did not converge: %v", res.Final)
	}
	want := problems.SetOf(0, 1, 2, 3, 4, 5)
	for _, s := range res.Final {
		if s != want {
			t.Errorf("final = %v, want %v", s, want)
		}
	}
}

func TestRangeAsync(t *testing.T) {
	g := graph.Complete(5)
	vals := []int{9, 4, 7, 1, 8}
	res, err := Run[problems.Tuple[int, int]](problems.NewRange(16), g,
		problems.InitialTuples(vals), opts())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("range async did not converge: %v", res.Final)
	}
	want := problems.Tuple[int, int]{A: 1, B: 9}
	for _, v := range res.Final {
		if v != want {
			t.Errorf("final = %v, want %v", v, want)
		}
	}
}

func TestGCDAsync(t *testing.T) {
	g := graph.Line(5)
	res, err := Run[int](problems.NewGCD(), g, []int{12, 18, 30, 48, 6}, opts())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Final[0] != 6 {
		t.Fatalf("gcd async: converged=%v final=%v", res.Converged, res.Final)
	}
}

func TestQuiescenceIsEventDriven(t *testing.T) {
	// The quiescence detector must examine the board only when an agent
	// adopts a new state — at most two adoptions per initiated exchange —
	// never on a wall-clock schedule. A poll loop (the old 200µs sleep
	// loop) would make QuiescenceChecks grow with run DURATION and blow
	// through this op-derived bound on any slow machine.
	g := graph.Ring(8)
	vals := []int{9, 4, 7, 1, 8, 2, 6, 5}
	res, err := Run[int](problems.NewMin(), g, vals, opts())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %v", res.Final)
	}
	if res.QuiescenceChecks == 0 {
		t.Error("no quiescence checks recorded on a converging run")
	}
	if limit := 2*res.Ops + 1; res.QuiescenceChecks > limit {
		t.Errorf("QuiescenceChecks = %d exceeds the adoption bound %d (ops=%d): detector is polling",
			res.QuiescenceChecks, limit, res.Ops)
	}
}

func TestQuiescenceLatency(t *testing.T) {
	// Convergence must be detected promptly after the last adoption: the
	// run below takes a handful of exchanges, so total wall time must be
	// nowhere near the 20s timeout the detector would otherwise sleep to.
	g := graph.Ring(4)
	start := time.Now()
	res, err := Run[int](problems.NewMin(), g, []int{3, 1, 2, 4}, opts())
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %v", res.Final)
	}
	if elapsed > 2*time.Second {
		t.Errorf("quiescence took %v — detector is not event-driven", elapsed)
	}
}

func TestBudgetSignalStopsWithoutProgress(t *testing.T) {
	// A run that exhausts MaxOps without ever converging must stop on the
	// budget signal, not the wall-clock timeout: links exist but the
	// problem cannot converge further once values equalize per component…
	// use a two-component graph (two disjoint edges) so the global min
	// can never spread everywhere.
	g, err := graph.New("two-pairs", 4, []graph.Edge{{A: 0, B: 1}, {A: 2, B: 3}})
	if err != nil {
		t.Fatal(err)
	}
	o := opts()
	o.MaxOps = 200
	o.Timeout = 30 * time.Second // long: the test must NOT need it
	start := time.Now()
	res, err := Run[int](problems.NewMin(), g, []int{4, 3, 2, 1}, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("disconnected system cannot converge globally")
	}
	if res.Ops < o.MaxOps {
		t.Errorf("stopped after %d ops, budget is %d", res.Ops, o.MaxOps)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("budget stop took %v — supervisor not woken by the budget signal", elapsed)
	}
}

// TestAsyncGoldenSingleThreaded is the async runtime's analogue of sim's
// golden matrix, run on a single-threaded scheduler (GOMAXPROCS(1)) per
// the ROADMAP item. True bitwise pinning of op counts is impossible even
// at GOMAXPROCS(1) — the Go scheduler and select both randomize — so the
// goldens pin what IS deterministic per seed and bound what is not:
//
//   - the final multiset and target, elementwise (pinned strings);
//   - op bounds: 0 < Ops ≤ MaxOps, and at least enough proper steps to
//     have spread the minimum (each proper step changes one initiator);
//   - the quiescence detector's op-bounded discipline:
//     QuiescenceChecks ≤ 2·Ops + 1 (one check per adoption nudge, never
//     per unit of wall-clock).
func TestAsyncGoldenSingleThreaded(t *testing.T) {
	old := goruntime.GOMAXPROCS(1)
	defer goruntime.GOMAXPROCS(old)

	g := graph.Ring(8)
	vals := []int{9, 4, 7, 1, 8, 2, 6, 5}
	const maxOps = 50_000
	wantFinal := "{1, 1, 1, 1, 1, 1, 1, 1}"
	for seed := int64(1); seed <= 3; seed++ {
		o := Options{Seed: seed, LinkUpProbability: 1, MaxOps: maxOps, Timeout: 20 * time.Second}
		res, err := Run[int](problems.NewMin(), g, vals, o)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Converged {
			t.Fatalf("seed %d: did not converge: %v", seed, res.Final)
		}
		if got := ms.OfInts(res.Final...).String(); got != wantFinal {
			t.Errorf("seed %d: final multiset %s, want %s", seed, got, wantFinal)
		}
		if got := res.Target.String(); got != wantFinal {
			t.Errorf("seed %d: target %s, want %s", seed, got, wantFinal)
		}
		if len(res.Violations) != 0 {
			t.Errorf("seed %d: violations %v", seed, res.Violations)
		}
		if res.Ops <= 0 || res.Ops > maxOps {
			t.Errorf("seed %d: Ops = %d outside (0, %d]", seed, res.Ops, maxOps)
		}
		// 7 agents must abandon non-minimal values; an initiator-side
		// proper step changes one value, and partner-side adoptions are
		// not counted, so at least 1 and at most 7 would be too tight a
		// lower bound only if every adoption were partner-side — demand
		// at least one, and no more proper steps than exchanges.
		if res.ProperSteps < 1 || res.ProperSteps > res.Ops {
			t.Errorf("seed %d: ProperSteps = %d outside [1, Ops=%d]", seed, res.ProperSteps, res.Ops)
		}
		if limit := 2*res.Ops + 1; res.QuiescenceChecks > limit {
			t.Errorf("seed %d: QuiescenceChecks = %d exceeds adoption bound %d",
				seed, res.QuiescenceChecks, limit)
		}
	}
}

// TestAsyncFaultsConverge: message loss and delivery delay at the
// exchange layer must never threaten correctness — a lost request
// changes no state and a delayed one executes the same atomic PairStep
// later — so min under heavy injected loss still converges with zero
// quiescence violations, just more slowly.
func TestAsyncFaultsConverge(t *testing.T) {
	g := graph.Complete(12)
	vals := make([]int, 12)
	for i := range vals {
		vals[i] = 40 - 3*i
	}
	o := opts()
	o.Faults = &dynamics.Faults{LossP: 0.4, DelayMax: 50 * time.Microsecond}
	res, err := Run[int](problems.NewMin(), g, vals, o)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge under 40%% loss: %v", res.Final)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations under faults: %v", res.Violations)
	}
	if res.Lost == 0 {
		t.Error("LossP=0.4 run recorded zero lost requests")
	}
	if res.Lost > res.Ops {
		t.Errorf("Lost = %d exceeds Ops = %d", res.Lost, res.Ops)
	}
}

// TestAsyncFaultsValidation: malformed fault specs fail the run before
// any agent starts.
func TestAsyncFaultsValidation(t *testing.T) {
	g := graph.Ring(4)
	vals := []int{3, 1, 2, 4}
	for _, f := range []dynamics.Faults{{LossP: 1}, {LossP: -0.5}, {DelayMax: -time.Second}} {
		f := f
		o := opts()
		o.Faults = &f
		if _, err := Run[int](problems.NewMin(), g, vals, o); err == nil {
			t.Errorf("Faults%+v: expected an error", f)
		}
	}
}

// TestAsyncFixedBackoffStillConverges: the legacy ladder is scheduling
// policy only — results are unaffected; it exists as the baseline for
// the backoff field-validation benchmarks.
func TestAsyncFixedBackoffStillConverges(t *testing.T) {
	g := graph.Complete(8)
	vals := []int{9, 4, 7, 1, 8, 2, 6, 5}
	o := opts()
	o.FixedBackoff = true
	res, err := Run[int](problems.NewMin(), g, vals, o)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || len(res.Violations) != 0 {
		t.Fatalf("fixed-ladder run failed: converged=%v violations=%v", res.Converged, res.Violations)
	}
}
