package runtime

import (
	"testing"
	"time"
)

// TestAIMDWindowRisesAndCaps: consecutive rejections must grow the
// window multiplicatively and saturate at the hard ceiling, never
// beyond.
func TestAIMDWindowRisesAndCaps(t *testing.T) {
	var b AIMD
	prev := time.Duration(0)
	for i := 0; i < 64; i++ {
		w := b.OnRejected()
		if w < minBackoff || w > hardMaxBackoff {
			t.Fatalf("rejection %d: window %v outside [%v, %v]", i, w, minBackoff, hardMaxBackoff)
		}
		if w < prev {
			t.Fatalf("rejection %d: window shrank %v → %v under pure rejection", i, prev, w)
		}
		prev = w
	}
	// The EWMA approaches rate 1.0 asymptotically, so the ceiling
	// approaches (never exactly reaches) the hard maximum.
	if prev < hardMaxBackoff*95/100 {
		t.Errorf("64 consecutive rejections saturated at %v, want within 5%% of the hard ceiling %v", prev, hardMaxBackoff)
	}
}

// TestAIMDAdditiveDecreaseKeepsMemory: after a burst of rejections, one
// success must shrink the window additively (keep contention memory),
// not reset it to zero the way the old ladder did; sustained success
// must drain it to zero.
func TestAIMDAdditiveDecreaseKeepsMemory(t *testing.T) {
	var b AIMD
	for i := 0; i < 8; i++ {
		b.OnRejected()
	}
	inStorm := b.window
	b.OnSuccess()
	if b.window == 0 {
		t.Fatal("one success reset the window to zero — additive decrease lost")
	}
	if got, want := b.window, inStorm-minBackoff; got != want {
		t.Errorf("after one success window = %v, want additive decrease to %v", got, want)
	}
	for i := 0; i < 10_000 && b.window > 0; i++ {
		b.OnSuccess()
	}
	if b.window != 0 {
		t.Errorf("sustained success left window at %v, want 0", b.window)
	}
}

// TestAIMDCeilingTracksRejectionRate: the ceiling must be the floor
// under no observed contention, and approach the hard maximum as the
// observed rejection rate approaches 1 — the "derived from observed
// rejection rates" contract.
func TestAIMDCeilingTracksRejectionRate(t *testing.T) {
	var calm AIMD
	for i := 0; i < 256; i++ {
		calm.observe(false)
	}
	if c := calm.ceiling(); c != minBackoff {
		t.Errorf("ceiling under zero rejection rate = %v, want floor %v", c, minBackoff)
	}

	var hot AIMD
	for i := 0; i < 256; i++ {
		hot.observe(true)
	}
	if c := hot.ceiling(); c < hardMaxBackoff*9/10 {
		t.Errorf("ceiling under ~100%% rejection rate = %v, want near %v", c, hardMaxBackoff)
	}

	// A mixed rate lands strictly between: the ceiling is a function of
	// the measured rate, not a constant.
	var mixed AIMD
	for i := 0; i < 256; i++ {
		mixed.observe(i%2 == 0)
	}
	c := mixed.ceiling()
	if c <= calm.ceiling() || c >= hot.ceiling() {
		t.Errorf("ceiling at ~50%% rate = %v, want strictly between %v and %v", c, calm.ceiling(), hot.ceiling())
	}
}

// TestAIMDZeroValueReady: the zero controller must hand out a sane
// window on its very first rejection (cold start).
func TestAIMDZeroValueReady(t *testing.T) {
	var b AIMD
	if w := b.OnRejected(); w != minBackoff {
		t.Errorf("first rejection window = %v, want the floor %v", w, minBackoff)
	}
}
