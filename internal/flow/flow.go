// Package flow implements the continuous-state extension the paper flags
// in §1.2: "systems in which variables change value continuously with
// time, and in which dynamics are specified by differential or difference
// equations."
//
// The canonical instance — and the bridge to the dynamic-consensus
// literature the paper cites ([10] Spanos/Olfati-Saber/Murray, [12]
// Tsitsiklis/Bertsekas/Athans) — is Laplacian averaging over whatever
// links the environment currently allows:
//
//	x_i(t+1) = x_i(t) + dt · Σ_{j ∈ up-neighbours(i,t)} (x_j(t) − x_i(t))
//
// The self-similar structure survives the passage to continuous state:
//
//   - the conserved quantity (the paper's f, here the mean together with
//     the cardinality) is preserved exactly by every step, because each
//     edge moves equal and opposite mass;
//   - the variant (the disagreement Σ_i Σ_j (x_i − x_j)²) is
//     non-increasing for any step size dt < 1/deg_max and strictly
//     decreasing whenever a connected group disagrees — the continuous
//     analogue of the D-step discipline;
//   - every connected component contracts toward its own mean: each
//     group behaves as if it were the entire system (self-similarity),
//     and partitioned components hold their own averages until links
//     heal.
//
// The package runs the flow under any env.Environment and reports the
// conservation and contraction diagnostics, making the paper's "we have
// started to study" remark a working artifact (experiment code and tests
// treat stability limits explicitly: dt above the threshold oscillates or
// diverges, below it contracts).
package flow

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/env"
)

// Options configures a continuous averaging run.
type Options struct {
	// Dt is the Euler step size. Stability requires Dt < 1/deg_max; Run
	// does not clamp it, so instability can be studied deliberately.
	Dt float64
	// Rounds is the number of environment/flow steps.
	Rounds int
	// Seed drives the environment.
	Seed int64
	// Tol is the disagreement threshold for declaring convergence.
	Tol float64
}

// Result reports a continuous run.
type Result struct {
	// Final holds the final agent values.
	Final []float64
	// MeanDrift is |mean(final) − mean(initial)| — zero up to float error
	// when conservation holds.
	MeanDrift float64
	// Disagreement traces Σ_{i<j} (x_i − x_j)² per round.
	Disagreement []float64
	// Converged reports whether the final disagreement is below Tol.
	Converged bool
	// MonotoneViolations counts rounds in which disagreement increased
	// (zero in the stable regime).
	MonotoneViolations int
	// ConvergedRound is the first round with disagreement below Tol (or
	// Rounds if never).
	ConvergedRound int
}

// Disagreement computes Σ_{i<j} (x_i − x_j)², the continuous variant
// function: n·Σx² − (Σx)².
func Disagreement(x []float64) float64 {
	var sum, sq float64
	for _, v := range x {
		sum += v
		sq += v * v
	}
	return float64(len(x))*sq - sum*sum
}

// Mean returns the arithmetic mean.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	total := 0.0
	for _, v := range x {
		total += v
	}
	return total / float64(len(x))
}

// MaxStableDt returns the largest provably stable Euler step for the
// graph underlying e: 1/(deg_max + 1). (The sharp bound is 2/λ_max of the
// Laplacian; deg_max + 1 is a safe, cheap underestimate.)
func MaxStableDt(e env.Environment) float64 {
	g := e.Graph()
	maxDeg := 0
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	return 1 / float64(maxDeg+1)
}

// Run executes the environment-gated Laplacian flow from x0.
func Run(e env.Environment, x0 []float64, opts Options) (*Result, error) {
	g := e.Graph()
	if len(x0) != g.N() {
		return nil, fmt.Errorf("flow: %d values for %d agents", len(x0), g.N())
	}
	if g.N() == 0 {
		return nil, errors.New("flow: empty system")
	}
	if opts.Dt <= 0 {
		return nil, fmt.Errorf("flow: non-positive dt %g", opts.Dt)
	}
	if opts.Rounds <= 0 {
		opts.Rounds = 1000
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-9
	}
	//lint:ignore detrand continuous-flow study keeps its golden-pinned stdlib environment stream; one O(607) construction per run, amortized over all rounds — migration would re-pin every flow experiment for no engine benefit
	rng := rand.New(rand.NewSource(opts.Seed))

	x := make([]float64, len(x0))
	copy(x, x0)
	delta := make([]float64, len(x))
	initialMean := Mean(x)

	res := &Result{Disagreement: make([]float64, 0, opts.Rounds+1), ConvergedRound: opts.Rounds}
	res.Disagreement = append(res.Disagreement, Disagreement(x))

	for round := 0; round < opts.Rounds; round++ {
		s := e.Step(round, rng)
		for i := range delta {
			delta[i] = 0
		}
		for id, edge := range g.Edges() {
			if !s.Usable(id, edge.A, edge.B) {
				continue
			}
			d := x[edge.B] - x[edge.A]
			delta[edge.A] += d
			delta[edge.B] -= d
		}
		for i := range x {
			x[i] += opts.Dt * delta[i]
		}
		dis := Disagreement(x)
		prev := res.Disagreement[len(res.Disagreement)-1]
		// The contraction argument guarantees non-increase only up to
		// floating-point roundoff; allow a small relative slack so the
		// counter reports genuine instability, not ulp noise.
		if dis > prev*(1+1e-9)+1e-12 {
			res.MonotoneViolations++
		}
		res.Disagreement = append(res.Disagreement, dis)
		if dis < opts.Tol {
			res.ConvergedRound = round + 1
			break
		}
	}

	res.Final = x
	res.MeanDrift = math.Abs(Mean(x) - initialMean)
	res.Converged = res.Disagreement[len(res.Disagreement)-1] < opts.Tol
	return res, nil
}
