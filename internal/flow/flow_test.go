package flow

import (
	"math"
	"testing"

	"repro/internal/env"
	"repro/internal/graph"
)

func TestConvergesStatic(t *testing.T) {
	g := graph.Ring(8)
	x0 := []float64{1, 2, 3, 4, 5, 6, 7, 12}
	res, err := Run(env.NewStatic(g), x0, Options{Dt: 0.2, Rounds: 2000, Seed: 1, Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: disagreement %g", res.Disagreement[len(res.Disagreement)-1])
	}
	if res.MeanDrift > 1e-9 {
		t.Errorf("mean drifted by %g (conservation violated)", res.MeanDrift)
	}
	if res.MonotoneViolations != 0 {
		t.Errorf("disagreement increased %d times in the stable regime", res.MonotoneViolations)
	}
	want := Mean(x0)
	for _, v := range res.Final {
		if math.Abs(v-want) > 1e-4 {
			t.Errorf("final value %g far from mean %g", v, want)
		}
	}
}

func TestConvergesUnderChurn(t *testing.T) {
	g := graph.Ring(10)
	x0 := make([]float64, 10)
	for i := range x0 {
		x0[i] = float64(i * i)
	}
	res, err := Run(env.NewEdgeChurn(g, 0.4), x0, Options{Dt: 0.2, Rounds: 20000, Seed: 2, Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge under churn")
	}
	if res.MeanDrift > 1e-8 {
		t.Errorf("mean drift %g", res.MeanDrift)
	}
	if res.MonotoneViolations != 0 {
		t.Errorf("monotone violations under churn: %d", res.MonotoneViolations)
	}
}

func TestPartitionHoldsBlockMeans(t *testing.T) {
	// Permanently partitioned: each block contracts to its own mean —
	// the continuous face of self-similarity.
	g := graph.Complete(6)
	e := env.NewPartitioner(g, 2, 0, 1<<30)
	x0 := []float64{0, 3, 6, 10, 20, 30} // blocks {0,1,2} and {3,4,5}
	res, err := Run(e, x0, Options{Dt: 0.1, Rounds: 5000, Seed: 3, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("global convergence across a permanent partition")
	}
	for i := 0; i < 3; i++ {
		if math.Abs(res.Final[i]-3) > 1e-6 {
			t.Errorf("block 1 agent %d = %g, want 3", i, res.Final[i])
		}
	}
	for i := 3; i < 6; i++ {
		if math.Abs(res.Final[i]-20) > 1e-6 {
			t.Errorf("block 2 agent %d = %g, want 20", i, res.Final[i])
		}
	}
	if res.MeanDrift > 1e-9 {
		t.Errorf("mean drift %g", res.MeanDrift)
	}
}

func TestInstabilityAboveThreshold(t *testing.T) {
	// dt far above the stability bound: disagreement must NOT contract
	// monotonically (the bound is load-bearing).
	g := graph.Complete(8) // deg_max = 7; stable dt < 1/8
	x0 := []float64{0, 1, 2, 3, 4, 5, 6, 70}
	res, err := Run(env.NewStatic(g), x0, Options{Dt: 0.4, Rounds: 200, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.MonotoneViolations == 0 && res.Converged {
		t.Error("unstable step size behaved stably — stability analysis wrong")
	}
}

func TestMaxStableDtIsStable(t *testing.T) {
	g := graph.Complete(8)
	e := env.NewStatic(g)
	dt := MaxStableDt(e)
	if dt <= 0 || dt > 1 {
		t.Fatalf("MaxStableDt = %g", dt)
	}
	x0 := []float64{0, 1, 2, 3, 4, 5, 6, 70}
	res, err := Run(e, x0, Options{Dt: dt, Rounds: 3000, Seed: 5, Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.MonotoneViolations != 0 {
		t.Errorf("recommended dt unstable: converged=%v violations=%d", res.Converged, res.MonotoneViolations)
	}
}

func TestValidation(t *testing.T) {
	g := graph.Ring(3)
	if _, err := Run(env.NewStatic(g), []float64{1}, Options{Dt: 0.1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Run(env.NewStatic(g), []float64{1, 2, 3}, Options{Dt: 0}); err == nil {
		t.Error("zero dt accepted")
	}
	if _, err := Run(env.NewStatic(graph.Line(0)), nil, Options{Dt: 0.1}); err == nil {
		t.Error("empty system accepted")
	}
}

func TestDisagreementFormula(t *testing.T) {
	// Σ_{i<j}(xi−xj)²: for {1,3,5}: 4+16+4 = 24.
	if d := Disagreement([]float64{1, 3, 5}); math.Abs(d-24) > 1e-12 {
		t.Errorf("Disagreement = %g, want 24", d)
	}
	if d := Disagreement([]float64{7, 7}); d != 0 {
		t.Errorf("consensus disagreement = %g", d)
	}
	if d := Disagreement(nil); d != 0 {
		t.Errorf("empty disagreement = %g", d)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean")
	}
	if Mean([]float64{2, 4}) != 3 {
		t.Error("mean wrong")
	}
}

func TestPowerLossConserves(t *testing.T) {
	// Agents going down must not break conservation (down agents simply
	// take no edges that round).
	g := graph.Ring(8)
	x0 := []float64{5, 1, 9, 2, 8, 3, 7, 4}
	res, err := Run(env.NewPowerLoss(g, 0.5), x0, Options{Dt: 0.2, Rounds: 20000, Seed: 6, Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanDrift > 1e-8 {
		t.Errorf("mean drift %g under power loss", res.MeanDrift)
	}
	if !res.Converged {
		t.Error("did not converge under power loss")
	}
}
