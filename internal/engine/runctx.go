package engine

import "math/rand"

// RunContext is the reusable warm-engine handle: the pieces of a run's
// execution machinery that are independent of the problem's state type
// and therefore shareable across ANY sequence of runs — the persistent
// worker pool (goroutines survive between runs, so only the first
// engaged batch pays start-up) and the per-worker reusable random
// streams (one O(1)-reseed FastRand per worker slot instead of a fresh
// stream per run).
//
// A RunContext is the engine half of the warm-run contract the scenario
// sweep runner (internal/sweep) builds on: one RunContext per sweep
// worker, handed to sim.RunWith for every cell that worker executes, so
// steady-state cells re-pay neither goroutine start-up nor stream
// construction. It is NOT safe for concurrent use — one RunContext
// belongs to one executing goroutine at a time, exactly like the Pool it
// owns.
type RunContext struct {
	pool  *Pool
	rands []*FastRand
}

// NewRunContext builds a RunContext whose pool has the given number of
// worker slots (≤ 0 means GOMAXPROCS). The pool's engagement threshold
// is per-run state: callers set it with Pool().SetThreshold before each
// run. No goroutines are started until the first engaged batch.
func NewRunContext(workers int) *RunContext {
	p := NewPool(workers, 1)
	return &RunContext{pool: p, rands: make([]*FastRand, p.Size())}
}

// Pool returns the context's persistent worker pool.
func (rc *RunContext) Pool() *Pool { return rc.pool }

// WorkerRand returns worker w's reusable random stream, restarted in
// place at the given seed. Reseeding is O(1) (see FastRand); distinct
// worker indices never share an entry, so the only coordination needed
// is the pool's own batch barrier.
func (rc *RunContext) WorkerRand(w int, seed int64) *rand.Rand {
	if rc.rands[w] == nil {
		rc.rands[w] = NewFastRand(seed)
	} else {
		rc.rands[w].Reseed(seed)
	}
	return rc.rands[w].Rand
}

// Close stops the pool's workers. The RunContext must not be used
// afterwards.
func (rc *RunContext) Close() { rc.pool.Close() }
