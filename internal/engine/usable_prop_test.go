package engine

import (
	"math/rand"
	"slices"
	"testing"

	"repro/internal/bitset"
	"repro/internal/env"
	"repro/internal/graph"
)

// TestUsableIndexIncrementalMatchesRebuild is the delta-index contract
// test at the matcher level: a matcher maintained incrementally from the
// changed-id stream must hold, round for round, the same usable-edge
// index — and therefore draw the same matching — as a matcher rebuilt
// from scratch from the same masks. Swept across delta environments
// (churn, bursty Markov links, a composite whose DayNight transitions
// force the rescan fallback) × MatchBlocks, with a dynamics-shaped
// overlay on top: each round a few extra edges/agents are masked out and
// restored next round, with the flips reported through the touched lists
// exactly the way the sim round loop reports the Applier's overlay logs.
// (The end-to-end variant with the real dynamics.Applier lives in
// internal/sim's TestDeltaStreamMatchesDeltaBlind — dynamics imports
// engine, so it cannot be exercised from this package.)
func TestUsableIndexIncrementalMatchesRebuild(t *testing.T) {
	pool := NewPool(2, 1)
	defer pool.Close()

	type scenario struct {
		name string
		g    *graph.Graph
		mkE  func(*graph.Graph) env.Environment
	}
	compose := func(g *graph.Graph) env.Environment {
		c, err := env.NewCompose(env.NewDayNight(g, 7, 2), env.NewPowerLoss(g, 0.2))
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	scenarios := []scenario{
		{"complete24/churn0.7", graph.Complete(24), func(g *graph.Graph) env.Environment { return env.NewEdgeChurn(g, 0.7) }},
		{"ring64/markov", graph.Ring(64), func(g *graph.Graph) env.Environment { return env.NewMarkovLinks(g, 0.1, 0.3) }},
		{"torus8x8/daynight+powerloss", graph.Torus(8, 8), compose},
	}

	for _, sc := range scenarios {
		for _, overlay := range []bool{false, true} {
			for _, blocks := range []int{1, 3} {
				g := sc.g
				e := sc.mkE(g)
				de, isDelta := e.(env.DeltaEnvironment)
				inc := NewPairMatcher(g, blocks)
				master := rand.New(rand.NewSource(int64(7 + blocks)))
				ovRng := rand.New(rand.NewSource(99))
				edgeUp, agentUp := bitset.New(g.M()), bitset.New(g.N())
				var prevOE, prevOA, curOE, curOA, touchedE, touchedA []int

				for round := 0; round < 120; round++ {
					es := e.Step(round, master)
					exact := false
					var envE, envA []int
					if isDelta {
						envE, envA, exact = de.StepDeltas()
					}

					// Apply the overlay to a copy of the environment masks,
					// never to the environment's own buffers (the Applier does
					// the same — mutating them would corrupt the env's delta
					// accounting). Overlay entries are down for one round and
					// implicitly restored by next round's fresh copy.
					if es.EdgeUp.IsZero() {
						edgeUp.SetAll()
					} else {
						edgeUp.Copy(es.EdgeUp)
					}
					if es.AgentUp.IsZero() {
						agentUp.SetAll()
					} else {
						agentUp.Copy(es.AgentUp)
					}
					prevOE, prevOA = append(prevOE[:0], curOE...), append(prevOA[:0], curOA...)
					curOE, curOA = curOE[:0], curOA[:0]
					if overlay {
						for k := 0; k < 3; k++ {
							if id := ovRng.Intn(g.M()); edgeUp.Get(id) {
								edgeUp.Clear(id)
								curOE = append(curOE, id)
							}
							if ag := ovRng.Intn(g.N()); agentUp.Get(ag) {
								agentUp.Clear(ag)
								curOA = append(curOA, ag)
							}
						}
					}
					touchedE = append(append(append(touchedE[:0], envE...), prevOE...), curOE...)
					touchedA = append(append(append(touchedA[:0], envA...), prevOA...), curOA...)

					inc.Update(edgeUp, agentUp, touchedE, touchedA, exact)
					ref := NewPairMatcher(g, blocks)
					ref.Update(edgeUp, agentUp, nil, nil, false)

					for b := range inc.bucketBits {
						if !inc.bucketBits[b].Equal(ref.bucketBits[b]) {
							t.Fatalf("%s overlay=%v blocks=%d round %d: bucket %d index diverged from from-scratch recompute",
								sc.name, overlay, blocks, round, b)
						}
					}
					seed := master.Int63()
					if got, want := inc.Match(seed, pool), ref.Match(seed, pool); !slices.Equal(got, want) {
						t.Fatalf("%s overlay=%v blocks=%d round %d: incremental matching %v != rebuild %v",
							sc.name, overlay, blocks, round, got, want)
					}
				}
			}
		}
	}
}
