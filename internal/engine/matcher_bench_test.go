package engine

import (
	"testing"

	"repro/internal/bitset"
	"repro/internal/graph"
)

// The quiescent-round acceptance benchmark pair: at N = 10⁵ agents, an
// Update with an exact empty change stream (a round in which no mask
// entry moved — static graph, no dynamics events) must be ≥ 10× cheaper
// than the full O(E) usability rescan it replaces. Compare:
//
//	go test ./internal/engine -run '^$' -bench 'MatcherUpdate(Quiescent|Rescan)1e5' -benchmem
//
// Quiescent sits in the nanoseconds (two empty range loops); the rescan
// walks all E edges. The same contrast drives the FairnessProbe
// (ObserveDelta vs Observe, internal/env) and the component-partition
// memo (internal/sim), so this pair stands in for the whole round path.

func benchMatcher1e5() (*PairMatcher, bitset.Set, bitset.Set) {
	g := graph.Ring(100_000)
	m := NewPairMatcher(g, 16)
	edgeUp := bitset.NewAllSet(g.M())
	agentUp := bitset.NewAllSet(g.N())
	m.Update(edgeUp, agentUp, nil, nil, false) // prime
	return m, edgeUp, agentUp
}

// BenchmarkMatcherUpdateQuiescent1e5 measures the O(changes) path with
// zero changes: the per-round index cost of a quiescent graph.
func BenchmarkMatcherUpdateQuiescent1e5(b *testing.B) {
	m, edgeUp, agentUp := benchMatcher1e5()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Update(edgeUp, agentUp, nil, nil, true)
	}
}

// BenchmarkMatcherUpdateRescan1e5 measures the full O(E) usability
// rescan — what every round paid before the delta index.
func BenchmarkMatcherUpdateRescan1e5(b *testing.B) {
	m, edgeUp, agentUp := benchMatcher1e5()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Update(edgeUp, agentUp, nil, nil, false)
	}
}

// BenchmarkMatcherUpdateDelta1e5 measures a realistic churn round: 200
// touched edges (0.2% of E) repaired in O(changes).
func BenchmarkMatcherUpdateDelta1e5(b *testing.B) {
	m, edgeUp, agentUp := benchMatcher1e5()
	touched := make([]int, 200)
	for i := range touched {
		touched[i] = i * 499
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Update(edgeUp, agentUp, touched, nil, true)
	}
}
