package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestAcquireReleaseSlots: grants never exceed GOMAXPROCS−1 outstanding,
// zero-grant is fine, and release restores capacity.
func TestAcquireReleaseSlots(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	ResetSlotPeak()
	a := AcquireSlots(2)
	b := AcquireSlots(10)
	if a+b > 3 {
		t.Fatalf("granted %d+%d slots with a budget of 3", a, b)
	}
	c := AcquireSlots(10)
	if a+b+c > 3 {
		t.Fatalf("over-grant: %d outstanding", a+b+c)
	}
	ReleaseSlots(a)
	ReleaseSlots(b)
	ReleaseSlots(c)
	if AcquireSlots(0) != 0 {
		t.Error("want<=0 must grant nothing")
	}
	if d := AcquireSlots(10); d != 3 {
		t.Errorf("after full release, granted %d of 3", d)
	} else {
		ReleaseSlots(d)
	}
	if peak := SlotPeak(); peak > 3 {
		t.Errorf("peak %d exceeds budget 3", peak)
	}
}

// TestNestedPoolsNeverOversubscribe: pools nested inside an already
// parallel construct must keep the TOTAL number of concurrently running
// work functions at or below GOMAXPROCS — the workers × shards goroutine
// blow-up this budget exists to prevent. Concurrency is measured
// directly, inside the leaf work function.
func TestNestedPoolsNeverOversubscribe(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	ResetSlotPeak()

	var active, maxActive atomic.Int64
	leaf := func(_, _ int) {
		cur := active.Add(1)
		for {
			prev := maxActive.Load()
			if cur <= prev || maxActive.CompareAndSwap(prev, cur) {
				break
			}
		}
		time.Sleep(200 * time.Microsecond)
		active.Add(-1)
	}

	// Four outer "sweep workers", each driving its own sharded-style pool
	// — without the shared budget this would be 4 pools × 3 extra workers
	// + 4 callers = 16 concurrent leaves on 4 cores.
	var wg sync.WaitGroup
	outer := 4
	grant := AcquireSlots(outer - 1) // the outer construct plays by the same rules
	for w := 0; w < grant; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pool := NewPool(4, 1)
			defer pool.Close()
			for batch := 0; batch < 5; batch++ {
				pool.DoAll(8, leaf)
			}
		}()
	}
	pool := NewPool(4, 1)
	for batch := 0; batch < 5; batch++ {
		pool.DoAll(8, leaf)
	}
	pool.Close()
	wg.Wait()
	ReleaseSlots(grant)

	if got := maxActive.Load(); got > int64(runtime.GOMAXPROCS(0)) {
		t.Errorf("observed %d concurrent work functions, budget allows %d",
			got, runtime.GOMAXPROCS(0))
	}
	if peak := SlotPeak(); peak > runtime.GOMAXPROCS(0)-1 {
		t.Errorf("slot peak %d exceeds budget %d", peak, runtime.GOMAXPROCS(0)-1)
	} else if peak == 0 {
		t.Error("budget never engaged — pool fan-out is not routed through AcquireSlots")
	}
}

// TestPoolCallerPanicLeavesPoolReusable: a panic in a caller-side
// callback (worker 0 is always the calling goroutine) must not leak
// worker-slot grants or leave workers draining a dead batch — the pool
// stays usable and the budget stays exact after the caller recovers.
func TestPoolCallerPanicLeavesPoolReusable(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	pool := NewPool(4, 1)
	defer pool.Close()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected the callback panic to propagate")
			}
		}()
		pool.DoAll(8, func(worker, _ int) {
			if worker == 0 {
				panic("caller-side callback failure")
			}
			time.Sleep(50 * time.Microsecond)
		})
	}()
	// The grant was returned: the full budget is available again.
	budget := runtime.GOMAXPROCS(0) - 1
	if g := AcquireSlots(budget); g != budget {
		t.Fatalf("budget leaked by panic path: acquired %d of %d", g, budget)
	} else {
		ReleaseSlots(g)
	}
	// And the pool still runs complete batches.
	var ran atomic.Int64
	pool.DoAll(16, func(_, _ int) { ran.Add(1) })
	if ran.Load() != 16 {
		t.Fatalf("post-panic batch executed %d/16 items", ran.Load())
	}
}
