package engine

import "math/rand"

// splitmixSource is a rand.Source64 with O(1) reseeding: SplitMix64
// (Steele, Lea & Flood, OOPSLA 2014), the generator Java's
// SplittableRandom and xoshiro's seeder use. The engines reseed a stream
// once per GROUP PER ROUND (the determinism discipline: every group
// steps on a private stream seeded in group order), and pairwise rounds
// at 10⁵ agents have ~5·10⁴ groups — math/rand's default lagged-Fibonacci
// source pays an O(607) state rebuild per Seed, which profiling shows is
// >90% of such rounds, while SplitMix64 seeds by assignment.
type splitmixSource struct{ state uint64 }

func (s *splitmixSource) Seed(seed int64) { s.state = uint64(seed) }

func (s *splitmixSource) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

func (s *splitmixSource) Int63() int64 { return int64(s.Uint64() >> 1) }

// FastRand is a *rand.Rand over a SplitMix64 source plus the O(1) Reseed
// the engine hot paths need. The zero value is not usable; build with
// NewFastRand. The source is held by pointer so a FastRand copied by
// value shares the original's stream consistently (Reseed and the
// embedded Rand always act on the same source) instead of silently
// diverging.
type FastRand struct {
	src *splitmixSource
	*rand.Rand
}

// NewFastRand builds a FastRand seeded with seed.
func NewFastRand(seed int64) *FastRand {
	src := &splitmixSource{}
	src.Seed(seed)
	//lint:ignore detrand the sanctioned constructor itself: rand.New here wraps the O(1)-reseed SplitMix64 source that detrand tells everyone else to use
	return &FastRand{src: src, Rand: rand.New(src)}
}

// Reseed restarts the stream at seed in O(1), equivalent to a fresh
// NewFastRand(seed) without the allocations.
//det:hotpath
func (f *FastRand) Reseed(seed int64) { f.src.Seed(seed) }

// SubSeed derives the i-th substream seed from a base seed: SplitMix64's
// stream-split idiom — step the base state by i gammas, output one mixed
// word. Distinct (base, i) pairs land on well-spread 63-bit seeds, so a
// caller that owns one base seed can hand out independent child streams
// indexed by position (the scenario-sweep runner derives every grid
// cell's run seed this way, from the cell's index — never from the
// identity of the worker that happens to execute it, which is what keeps
// grid results independent of scheduling and worker count).
//det:hotpath
func SubSeed(base int64, i int) int64 {
	s := splitmixSource{state: uint64(base) + uint64(i)*0x9E3779B97F4A7C15}
	return s.Int63()
}
