package engine

import (
	"math/rand"

	"repro/internal/graph"
)

// PairMatcher computes, round by round, a random maximal matching over
// the usable edges of a fixed graph — the group-selection step of
// pairwise gossip — using a partitioned algorithm so that large rounds
// fan out across the worker pool instead of running one serial O(E)
// shuffle on the master stream:
//
//  1. the agents are split into contiguous blocks (graph.EdgePartition,
//     the same blocking rule engine.Shards uses for state); interior
//     edges of distinct blocks never share an endpoint, so each block
//     computes a greedy maximal matching over its usable interior edges
//     independently, on its own substream seeded from (round seed,
//     block index);
//  2. a sequential reconciliation pass then matches the usable boundary
//     edges (endpoints in distinct blocks) in an order drawn from the
//     boundary substream, skipping endpoints the interior pass claimed.
//
// Every usable interior edge has a matched endpoint after pass 1 within
// its own block, and pass 2 greedily exhausts the boundary edges, so the
// combined matching is maximal. Every choice is a function of (round
// seed, block partition) alone — never of worker scheduling, pool size,
// or the state layout — so results are bit-identical for any GOMAXPROCS
// and any Options.Shards; the block count itself is part of the
// algorithm (different block counts draw different, equally valid
// matchings, exactly like different seeds) and is therefore derived from
// the system size, not from the machine.
//
// All buffers are matcher-owned and reused: after warm-up a Match call
// allocates nothing.
type PairMatcher struct {
	part  graph.EdgePartition
	edges []graph.Edge

	matched []bool // per agent: claimed by the current round's matching
	// Per-block scratch (parallel writers touch only their own index):
	// usable interior edge ids, then the block's matched edge ids.
	usable [][]int
	found  [][]int
	// rands[b] is block b's reusable substream; rands[Blocks] drives the
	// boundary reconciliation pass. FastRand so the per-round reseed is
	// O(1) — with stdlib sources the O(607) rebuild per Seed would grow
	// linearly in the block count (see fastrand.go), reseeded in place
	// every round.
	rands []*FastRand

	boundary []int // usable boundary edge ids, reused
	out      []int // final matched edge ids in deterministic order

	// Current-round inputs, stashed so blockFn (built once) captures no
	// per-round state and the pool fan-out allocates nothing.
	curEdgeUp, curAgentUp []bool
	curSeed               int64
	blockFn               func(worker, b int)
}

// matchStreamSeed derives the substream seed for block b (or, at
// b == Blocks, the boundary pass) from the round's matching seed. The
// prime spreads the substreams across the seed space, in the same style
// as AgentSeed.
func matchStreamSeed(seed int64, b int) int64 { return seed + int64(b+1)*104729 }

// NewPairMatcher builds a matcher for g with the given number of
// contiguous agent blocks (clamped to [1, N]).
func NewPairMatcher(g *graph.Graph, blocks int) *PairMatcher {
	part := g.PartitionEdges(blocks)
	m := &PairMatcher{
		part:    part,
		edges:   g.Edges(),
		matched: make([]bool, g.N()),
		usable:  make([][]int, part.Blocks),
		found:   make([][]int, part.Blocks),
		rands:   make([]*FastRand, part.Blocks+1),
	}
	m.blockFn = func(_, b int) { m.matchBlock(b, m.curSeed, m.curEdgeUp, m.curAgentUp) }
	return m
}

// Blocks returns the block count of the matcher's partition.
func (m *PairMatcher) Blocks() int { return m.part.Blocks }

// Edge returns the endpoints of the given edge id.
func (m *PairMatcher) Edge(id int) graph.Edge { return m.edges[id] }

// Matched reports whether the given agent was claimed by the matching of
// the most recent Match call.
func (m *PairMatcher) Matched(agent int) bool { return m.matched[agent] }

// stream returns substream i restarted in place for the current round,
// without allocations after first use. Distinct blocks never share an
// entry.
func (m *PairMatcher) stream(i int, seed int64) *rand.Rand {
	if m.rands[i] == nil {
		m.rands[i] = NewFastRand(matchStreamSeed(seed, i))
	} else {
		m.rands[i].Reseed(matchStreamSeed(seed, i))
	}
	return m.rands[i].Rand
}

// usableEdge reports whether edge id can carry a pair step under the
// given masks (nil masks mean all-up, as in graph.Components).
func (m *PairMatcher) usableEdge(id int, edgeUp, agentUp []bool) bool {
	if edgeUp != nil && !edgeUp[id] {
		return false
	}
	if agentUp != nil {
		e := m.edges[id]
		if !agentUp[e.A] || !agentUp[e.B] {
			return false
		}
	}
	return true
}

// matchBlock runs pass 1 for one block: collect usable interior edges,
// shuffle them on the block substream, and claim greedily. Blocks touch
// disjoint agents, so concurrent matchBlock calls never race.
func (m *PairMatcher) matchBlock(b int, seed int64, edgeUp, agentUp []bool) {
	ids := m.usable[b][:0]
	for _, id := range m.part.Interior[b] {
		if m.usableEdge(id, edgeUp, agentUp) {
			ids = append(ids, id)
		}
	}
	rng := m.stream(b, seed)
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	found := m.found[b][:0]
	for _, id := range ids {
		e := m.edges[id]
		if m.matched[e.A] || m.matched[e.B] {
			continue
		}
		m.matched[e.A], m.matched[e.B] = true, true
		found = append(found, id)
	}
	m.usable[b] = ids
	m.found[b] = found
}

// Match computes the round's maximal matching over the edges usable
// under the given masks and returns the matched edge ids in a
// deterministic order (block 0's pairs, block 1's, …, then the boundary
// pairs). The returned slice aliases matcher-owned scratch and is valid
// until the next Match call. seed should be one draw from the engine's
// master stream; pool parallelizes the per-block pass (results are
// identical for every pool size).
func (m *PairMatcher) Match(edgeUp, agentUp []bool, seed int64, pool *Pool) []int {
	for i := range m.matched {
		m.matched[i] = false
	}
	blocks := m.part.Blocks
	if blocks == 1 {
		m.matchBlock(0, seed, edgeUp, agentUp)
	} else {
		m.curEdgeUp, m.curAgentUp, m.curSeed = edgeUp, agentUp, seed
		pool.DoAll(blocks, m.blockFn)
		m.curEdgeUp, m.curAgentUp = nil, nil
	}

	out := m.out[:0]
	for b := 0; b < blocks; b++ {
		out = append(out, m.found[b]...)
	}

	// Pass 2: sequential boundary reconciliation on its own substream.
	if len(m.part.Boundary) > 0 {
		ids := m.boundary[:0]
		for _, id := range m.part.Boundary {
			if m.usableEdge(id, edgeUp, agentUp) {
				ids = append(ids, id)
			}
		}
		rng := m.stream(blocks, seed)
		rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		for _, id := range ids {
			e := m.edges[id]
			if m.matched[e.A] || m.matched[e.B] {
				continue
			}
			m.matched[e.A], m.matched[e.B] = true, true
			out = append(out, id)
		}
		m.boundary = ids
	}
	m.out = out
	return out
}
