package engine

import (
	"math/rand"

	"repro/internal/bitset"
	"repro/internal/graph"
)

// PairMatcher computes, round by round, a random maximal matching over
// the usable edges of a fixed graph — the group-selection step of
// pairwise gossip — using a partitioned algorithm so that large rounds
// fan out across the worker pool instead of running one serial O(E)
// shuffle on the master stream:
//
//  1. the agents are split into contiguous blocks (graph.EdgePartition,
//     the same blocking rule engine.Shards uses for state); interior
//     edges of distinct blocks never share an endpoint, so each block
//     computes a greedy maximal matching over its usable interior edges
//     independently, on its own substream seeded from (round seed,
//     block index);
//  2. the boundary edges (endpoints in distinct blocks) are reconciled
//     pair-by-pair along the partition's precomputed level schedule
//     (graph.EdgePartition.Levels): within a level no two block pairs
//     share a block, so the pairs of a level run concurrently, each
//     shuffling its own usable boundary edges on its own substream and
//     claiming greedily against the global matched set. Levels are
//     separated by pool barriers, so claims from earlier levels are
//     visible — the "tree order" that replaces the old sequential
//     boundary pass without serializing large-cut graphs.
//
// Every usable interior edge has a matched endpoint after pass 1 within
// its own block, and every usable boundary edge is examined exactly once
// by its pair in pass 2, so the combined matching is maximal. Every
// choice is a function of (round seed, block partition) alone — the
// level schedule is a pure function of the edge set, never of worker
// scheduling, pool size, or the state layout — so results are
// bit-identical for any GOMAXPROCS and any Options.Shards; the block
// count itself is part of the algorithm (different block counts draw
// different, equally valid matchings, exactly like different seeds) and
// is therefore derived from the system size, not from the machine.
//
// Usability is not recomputed from the masks each round. The matcher
// owns a usable-edge delta index: one bitset per bucket (a block's
// interior list, or one block pair's boundary list) over positions in
// that bucket's static ascending edge-id list. Update maintains the
// index from the caller's changed-id stream (environment deltas plus
// dynamics overlay logs) in O(changes); Match then materializes each
// bucket's usable ids by word-skip scan. A caller that cannot bound the
// change set passes exact=false and pays one full O(E) rescan — which is
// also how a matcher revived from a warm cache self-heals, since its
// first Update of a run is always a full rescan.
//
// All buffers are matcher-owned and reused: after warm-up an
// Update+Match round allocates nothing.
type PairMatcher struct {
	g     *graph.Graph
	part  *graph.EdgePartition
	edges []graph.Edge // shared read-only view

	matched []bool // per agent: claimed by the current round's matching

	// Usable-edge delta index. Buckets 0..Blocks-1 are the interior
	// lists; bucket Blocks+k is boundary pair k. bucketOf/bucketPos map
	// an edge id to its bucket and its position in that bucket's static
	// list; bucketBits[b] marks the currently usable positions.
	primed     bool
	bucketOf   []int32
	bucketPos  []int32
	bucketBits []bitset.Set
	bucketIDs  [][]int // static ascending edge ids per bucket (shared with part)

	// Per-bucket scratch (parallel writers touch only their own index):
	// the materialized+shuffled usable ids, then the bucket's matched ids.
	work  [][]int
	found [][]int
	// rands[i] is bucket i's reusable substream. FastRand so the
	// per-round reseed is O(1) — with stdlib sources the O(607) rebuild
	// per Seed would grow linearly in the bucket count (see fastrand.go).
	rands []*FastRand

	// gen is the graph growth generation the index was last sized for;
	// Grow no-ops when it is current (see Grow).
	gen int

	out []int // final matched edge ids in deterministic order

	// Current-round inputs, stashed so the fan-out closures (built once)
	// capture no per-round state and the pool fan-out allocates nothing.
	curSeed  int64
	curLevel []int
	blockFn  func(worker, b int)
	pairFn   func(worker, i int)
}

// matchStreamSeed derives the substream seed for bucket b (interior
// blocks first, then one stream per boundary pair) from the round's
// matching seed. The prime spreads the substreams across the seed space,
// in the same style as AgentSeed.
func matchStreamSeed(seed int64, b int) int64 { return seed + int64(b+1)*104729 }

// NewPairMatcher builds a matcher for g with the given number of
// contiguous agent blocks (clamped to [1, N]).
func NewPairMatcher(g *graph.Graph, blocks int) *PairMatcher {
	part := g.PartitionEdges(blocks)
	nb := part.Blocks + len(part.Pairs)
	m := &PairMatcher{
		g:          g,
		part:       part,
		gen:        g.Gen(),
		edges:      g.EdgesView(),
		matched:    make([]bool, g.N()),
		bucketOf:   make([]int32, g.M()),
		bucketPos:  make([]int32, g.M()),
		bucketBits: make([]bitset.Set, nb),
		bucketIDs:  make([][]int, nb),
		work:       make([][]int, nb),
		found:      make([][]int, nb),
		rands:      make([]*FastRand, nb),
	}
	for b := 0; b < part.Blocks; b++ {
		m.bucketIDs[b] = part.Interior[b]
	}
	for k := range part.Pairs {
		m.bucketIDs[part.Blocks+k] = part.Pairs[k].Edges
	}
	for b, ids := range m.bucketIDs {
		m.bucketBits[b] = bitset.New(len(ids))
		for pos, id := range ids {
			m.bucketOf[id] = int32(b)
			m.bucketPos[id] = int32(pos)
		}
	}
	m.blockFn = func(_, b int) { m.matchBucket(b, m.curSeed) }
	m.pairFn = func(_, i int) { m.matchBucket(m.part.Blocks+m.curLevel[i], m.curSeed) }
	return m
}

// Blocks returns the block count of the matcher's partition.
func (m *PairMatcher) Blocks() int { return m.part.Blocks }

// Edge returns the endpoints of the given edge id.
func (m *PairMatcher) Edge(id int) graph.Edge { return m.edges[id] }

// Matched reports whether the given agent was claimed by the matching of
// the most recent Match call.
func (m *PairMatcher) Matched(agent int) bool { return m.matched[agent] }

// stream returns substream i restarted in place for the current round,
// without allocations after first use. Distinct buckets never share an
// entry.
func (m *PairMatcher) stream(i int, seed int64) *rand.Rand {
	if m.rands[i] == nil {
		m.rands[i] = NewFastRand(matchStreamSeed(seed, i))
	} else {
		m.rands[i].Reseed(matchStreamSeed(seed, i))
	}
	return m.rands[i].Rand
}

// usableEdge reports whether edge id can carry a pair step under the
// given masks (zero masks mean all-up, as in graph.Components). Edges
// retired by a topology splice are never usable, whatever the masks say —
// environments are not required to clear retired ids.
func (m *PairMatcher) usableEdge(id int, edgeUp, agentUp bitset.Set) bool {
	if m.g.EdgeRetired(id) {
		return false
	}
	if !edgeUp.IsZero() && !edgeUp.Get(id) {
		return false
	}
	if !agentUp.IsZero() {
		e := m.edges[id]
		if !agentUp.Get(e.A) || !agentUp.Get(e.B) {
			return false
		}
	}
	return true
}

// Grow brings the matcher's structural index in line with its graph
// after population growth, and no-ops when the index is already current
// (so callers can invoke it unconditionally on cache revival). The
// graph's cached partition was extended in place — existing interior
// lists, pair indices, and positions are all preserved, only appended —
// so Grow extends rather than rebuilds: the matched array and the
// id→(bucket, position) maps gain entries for the new agents/edges, new
// boundary pairs gain buckets at the END of the bucket range, and every
// bucket's usable bitset is resized with the new positions CLEAR. The
// caller feeds the growth's new and retired edge ids through the next
// Update's touched stream, which sets the fresh bits correctly — the
// same O(changes) contract every other mutation uses. Per-round draws
// are untouched: bucket substream seeds depend only on bucket index, and
// existing buckets keep their indices.
func (m *PairMatcher) Grow() {
	if m.gen == m.g.Gen() {
		return
	}
	m.gen = m.g.Gen()
	part := m.part
	m.edges = m.g.EdgesView()
	for len(m.matched) < m.g.N() {
		m.matched = append(m.matched, false)
	}
	for len(m.bucketOf) < m.g.M() {
		m.bucketOf = append(m.bucketOf, 0)
		m.bucketPos = append(m.bucketPos, 0)
	}
	nb := part.Blocks + len(part.Pairs)
	for len(m.bucketBits) < nb {
		m.bucketBits = append(m.bucketBits, bitset.Set{})
		m.bucketIDs = append(m.bucketIDs, nil)
		m.work = append(m.work, nil)
		m.found = append(m.found, nil)
		m.rands = append(m.rands, nil)
	}
	// Refresh every bucket's id-list alias (partition appends may have
	// reallocated the backing slices) and index the appended tail of each.
	for b := 0; b < part.Blocks; b++ {
		m.bucketIDs[b] = part.Interior[b]
	}
	for k := range part.Pairs {
		m.bucketIDs[part.Blocks+k] = part.Pairs[k].Edges
	}
	for b, ids := range m.bucketIDs {
		old := m.bucketBits[b].Len()
		if old != len(ids) {
			if m.bucketBits[b].IsZero() {
				m.bucketBits[b] = bitset.New(len(ids))
			} else {
				m.bucketBits[b] = m.bucketBits[b].Resized(len(ids), false)
			}
		}
		for pos := old; pos < len(ids); pos++ {
			id := ids[pos]
			m.bucketOf[id] = int32(b)
			m.bucketPos[id] = int32(pos)
		}
	}
}

// Update brings the usable-edge index in line with the round's effective
// masks. touchedEdges and touchedAgents list the ids whose mask entries
// may have changed since the previous Update (a superset is fine);
// exact=false declares the change set unbounded and forces a full O(E)
// rescan. The first Update after construction or a cache revival always
// rescans, so stale index state cannot leak between runs.
//det:hotpath
func (m *PairMatcher) Update(edgeUp, agentUp bitset.Set, touchedEdges, touchedAgents []int, exact bool) {
	if !m.primed || !exact {
		m.rebuild(edgeUp, agentUp)
		m.primed = true
		return
	}
	for _, id := range touchedEdges {
		m.reexamine(id, edgeUp, agentUp)
	}
	for _, ag := range touchedAgents {
		for _, id := range m.g.IncidentEdgeIDs(ag) {
			m.reexamine(id, edgeUp, agentUp)
		}
	}
}

// reexamine recomputes edge id's usability and repairs its bucket bit on
// change. O(1) per call.
//det:hotpath
func (m *PairMatcher) reexamine(id int, edgeUp, agentUp bitset.Set) {
	now := m.usableEdge(id, edgeUp, agentUp)
	b, pos := m.bucketOf[id], int(m.bucketPos[id])
	if m.bucketBits[b].Get(pos) != now {
		m.bucketBits[b].SetTo(pos, now)
	}
}

// rebuild recomputes every bucket bit from scratch.
func (m *PairMatcher) rebuild(edgeUp, agentUp bitset.Set) {
	for b, ids := range m.bucketIDs {
		bits := m.bucketBits[b]
		bits.ClearAll()
		for pos, id := range ids {
			if m.usableEdge(id, edgeUp, agentUp) {
				bits.Set(pos)
			}
		}
	}
}

// matchBucket materializes bucket b's usable edge ids (ascending, by
// word-skip scan of the index), shuffles them on the bucket substream,
// and claims greedily against the global matched set. Interior buckets
// of distinct blocks touch disjoint agents; boundary-pair buckets are
// only run concurrently within one schedule level, whose pairs are
// block-disjoint by construction — so concurrent matchBucket calls never
// race.
//det:hotpath
func (m *PairMatcher) matchBucket(b int, seed int64) {
	ids := m.bucketBits[b].AppendSelected(m.work[b][:0], m.bucketIDs[b])
	rng := m.stream(b, seed)
	//lint:ignore hotalloc the swap closure captures only ids and never escapes Shuffle, so it stays on the stack; the alloc budget benchmarks pin this path at 0 allocs/round
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	found := m.found[b][:0]
	for _, id := range ids {
		e := m.edges[id]
		if m.matched[e.A] || m.matched[e.B] {
			continue
		}
		m.matched[e.A], m.matched[e.B] = true, true
		found = append(found, id)
	}
	m.work[b] = ids
	m.found[b] = found
}

// Match computes the round's maximal matching over the edges currently
// marked usable by the index (call Update first each round) and returns
// the matched edge ids in a deterministic order (block 0's pairs, block
// 1's, …, then boundary pair 0's, pair 1's, …). The returned slice
// aliases matcher-owned scratch and is valid until the next Match call.
// seed should be one draw from the engine's master stream; pool
// parallelizes the per-block pass and each boundary level (results are
// identical for every pool size).
func (m *PairMatcher) Match(seed int64, pool *Pool) []int {
	if !m.primed {
		panic("engine.PairMatcher: Match before Update")
	}
	for i := range m.matched {
		m.matched[i] = false
	}
	blocks := m.part.Blocks
	if blocks == 1 {
		m.matchBucket(0, seed)
	} else {
		m.curSeed = seed
		pool.DoAll(blocks, m.blockFn)
	}

	// Boundary reconciliation, one level at a time. The DoAll barrier
	// between levels publishes every claim a level made before the next
	// level's pairs read the matched set.
	if len(m.part.Levels) > 0 {
		m.curSeed = seed
		for _, level := range m.part.Levels {
			if len(level) == 1 {
				m.matchBucket(blocks+level[0], seed)
				continue
			}
			m.curLevel = level
			pool.DoAll(len(level), m.pairFn)
		}
	}

	out := m.out[:0]
	nb := blocks + len(m.part.Pairs)
	for b := 0; b < nb; b++ {
		out = append(out, m.found[b]...)
	}
	m.out = out
	return out
}
