package engine

import (
	"math/rand"
	"slices"
	"testing"

	"repro/internal/bitset"
	"repro/internal/graph"
)

// randomMasks draws edge/agent availability masks (sometimes nil, the
// all-up convention).
func randomMasks(g *graph.Graph, rng *rand.Rand) (edgeUp, agentUp []bool) {
	if rng.Intn(4) != 0 {
		edgeUp = make([]bool, g.M())
		for i := range edgeUp {
			edgeUp[i] = rng.Float64() < 0.7
		}
	}
	if rng.Intn(4) != 0 {
		agentUp = make([]bool, g.N())
		for i := range agentUp {
			agentUp[i] = rng.Float64() < 0.8
		}
	}
	return edgeUp, agentUp
}

// match is the test shorthand for the full-rescan Update followed by
// Match — the unprimed path every caller without a change stream uses.
func match(m *PairMatcher, edgeUp, agentUp []bool, seed int64, pool *Pool) []int {
	m.Update(bitset.FromBools(edgeUp), bitset.FromBools(agentUp), nil, nil, false)
	return m.Match(seed, pool)
}

// TestPairMatcherValidMaximal: on random graphs, masks, blocks, and
// seeds, the matching must be a valid matching (no shared endpoints, only
// usable edges) and maximal (no usable edge with both endpoints free).
func TestPairMatcherValidMaximal(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	pool := NewPool(3, 1)
	defer pool.Close()
	for trial := 0; trial < 80; trial++ {
		g := graph.ErdosRenyi(2+rng.Intn(30), 0.3, rng)
		m := NewPairMatcher(g, 1+rng.Intn(5))
		for round := 0; round < 4; round++ {
			edgeUp, agentUp := randomMasks(g, rng)
			ids := match(m, edgeUp, agentUp, rng.Int63(), pool)
			claimed := make([]bool, g.N())
			usable := func(id int) bool {
				e := g.Edge(id)
				return (edgeUp == nil || edgeUp[id]) &&
					(agentUp == nil || (agentUp[e.A] && agentUp[e.B]))
			}
			for _, id := range ids {
				e := g.Edge(id)
				if !usable(id) {
					t.Fatalf("trial %d: matched unusable edge %v", trial, e)
				}
				if claimed[e.A] || claimed[e.B] {
					t.Fatalf("trial %d: agent matched twice at edge %v", trial, e)
				}
				claimed[e.A], claimed[e.B] = true, true
				if !m.Matched(e.A) || !m.Matched(e.B) {
					t.Fatalf("trial %d: Matched() disagrees with result at %v", trial, e)
				}
			}
			for id := 0; id < g.M(); id++ {
				e := g.Edge(id)
				if usable(id) && !claimed[e.A] && !claimed[e.B] {
					t.Fatalf("trial %d: matching not maximal — usable edge %v has both endpoints free", trial, e)
				}
			}
		}
	}
}

// TestPairMatcherPoolIndependent: the matched id sequence is a function
// of (seed, partition, masks) only — identical for every pool size and
// across repeated/interleaved calls (scratch reuse must not leak state
// between rounds).
func TestPairMatcherPoolIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	g := graph.ErdosRenyi(48, 0.2, rng)
	seeds := []int64{1, 7, 42}
	var want [][]int
	for _, poolSize := range []int{1, 2, 8} {
		pool := NewPool(poolSize, 1)
		m := NewPairMatcher(g, 5)
		var got [][]int
		for _, seed := range seeds {
			edgeUp := make([]bool, g.M())
			maskRng := rand.New(rand.NewSource(seed))
			for i := range edgeUp {
				edgeUp[i] = maskRng.Float64() < 0.8
			}
			got = append(got, slices.Clone(match(m, edgeUp, nil, seed, pool)))
		}
		if want == nil {
			want = got
		} else {
			for i := range got {
				if !slices.Equal(got[i], want[i]) {
					t.Fatalf("pool size %d, seed %d: matching %v != reference %v",
						poolSize, seeds[i], got[i], want[i])
				}
			}
		}
		pool.Close()
	}
}

// TestPairMatcherBlockCountChangesDrawOnly: different block counts may
// draw different matchings (they are part of the algorithm, like the
// seed), but each must still be valid and deterministic for a fixed
// count. Guards against accidentally tying the partition to GOMAXPROCS.
func TestPairMatcherBlockCountChangesDrawOnly(t *testing.T) {
	g := graph.Ring(24)
	pool := NewPool(2, 1)
	defer pool.Close()
	for _, blocks := range []int{1, 2, 3, 24, 100} {
		a := NewPairMatcher(g, blocks)
		b := NewPairMatcher(g, blocks)
		for seed := int64(0); seed < 5; seed++ {
			if !slices.Equal(match(a, nil, nil, seed, pool), match(b, nil, nil, seed, pool)) {
				t.Fatalf("blocks=%d seed=%d: two matchers over the same inputs disagree", blocks, seed)
			}
		}
		if got := a.Blocks(); blocks >= 1 && blocks <= 24 && got != blocks {
			t.Fatalf("Blocks() = %d, want %d", got, blocks)
		}
	}
}

// TestPairMatcherAllocFree: warm Update+Match rounds must not allocate —
// the index and matching buffers are engine-owned, like the component
// path's. Exercises both the full-rescan and the exact-delta Update.
func TestPairMatcherAllocFree(t *testing.T) {
	g := graph.Torus(8, 8)
	pool := NewPool(1, 1)
	defer pool.Close()
	m := NewPairMatcher(g, 4)
	edgeUp := bitset.New(g.M())
	for i := 0; i < g.M(); i++ {
		edgeUp.SetTo(i, i%3 != 0)
	}
	touched := []int{0, 1, 2}
	seed := int64(0)
	m.Update(edgeUp, bitset.Set{}, nil, nil, false)
	m.Match(seed, pool) // warm-up growth
	allocs := testing.AllocsPerRun(50, func() {
		seed++
		m.Update(edgeUp, bitset.Set{}, nil, nil, false)
		m.Match(seed, pool)
	})
	if allocs != 0 {
		t.Errorf("warm rescan Update+Match allocated %.0f times per run", allocs)
	}
	allocs = testing.AllocsPerRun(50, func() {
		seed++
		edgeUp.SetTo(0, seed%2 == 0)
		m.Update(edgeUp, bitset.Set{}, touched, nil, true)
		m.Match(seed, pool)
	})
	if allocs != 0 {
		t.Errorf("warm delta Update+Match allocated %.0f times per run", allocs)
	}
}
