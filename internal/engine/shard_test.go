package engine

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	ms "repro/internal/multiset"
	"repro/internal/problems"
)

// TestShardsViewMatchesTracker: for random populations, shard counts, and
// delta batches, the merged shard view must equal the single-tracker
// snapshot after every flush.
func TestShardsViewMatchesTracker(t *testing.T) {
	cmp := ms.OrderedCmp[int]()
	rng := rand.New(rand.NewSource(17))
	pool := NewPool(2, 1)
	defer pool.Close()
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		p := 1 + rng.Intn(8)
		states := make([]int, n)
		for i := range states {
			states[i] = rng.Intn(20)
		}
		sh := NewShards(cmp, states, p)
		tr := ms.NewTracker(cmp, states)
		if sh.Len() != n {
			t.Fatalf("trial %d: sharded Len %d, want %d", trial, sh.Len(), n)
		}
		for round := 0; round < 10; round++ {
			// Mutate a random subset of agents (each at most once).
			var olds, news []int
			for a := 0; a < n; a++ {
				if rng.Intn(3) != 0 {
					continue
				}
				nv := rng.Intn(20)
				sh.Stage(a, states[a], nv)
				olds = append(olds, states[a])
				news = append(news, nv)
				states[a] = nv
			}
			sh.Flush(pool)
			tr.Replace(olds, news)
			if got, want := sh.View(), tr.View(); !got.Equal(want) {
				t.Fatalf("trial %d round %d: sharded view %v != tracker %v (p=%d)",
					trial, round, got, want, p)
			}
		}
	}
}

// TestShardsOwnerCoversAllAgents: every agent maps to a valid shard and
// block boundaries tile the index space.
func TestShardsOwnerCoversAllAgents(t *testing.T) {
	cmp := ms.OrderedCmp[int]()
	for _, n := range []int{1, 2, 7, 16, 33} {
		for _, p := range []int{1, 2, 3, 8, 64} {
			states := make([]int, n)
			sh := NewShards(cmp, states, p)
			counts := make([]int, sh.P())
			for a := 0; a < n; a++ {
				o := sh.Owner(a)
				if o < 0 || o >= sh.P() {
					t.Fatalf("n=%d p=%d: owner(%d) = %d out of range [0,%d)", n, p, a, o, sh.P())
				}
				counts[o]++
			}
			total := 0
			for i, c := range counts {
				if c != sh.ShardView(i).Len() {
					t.Fatalf("n=%d p=%d: shard %d owns %d agents but tracks %d", n, p, i, c, sh.ShardView(i).Len())
				}
				total += c
			}
			if total != n {
				t.Fatalf("n=%d p=%d: owners cover %d agents", n, p, total)
			}
		}
	}
}

// TestObserveRoundShardedMatchesUnsharded: the sharded monitor reduction
// must produce the same h values and the same (absence of) violations as
// the unsharded ObserveRound across the super-idempotent problems.
func TestObserveRoundShardedMatchesUnsharded(t *testing.T) {
	pool := NewPool(4, 1)
	defer pool.Close()
	rng := rand.New(rand.NewSource(23))
	pr := problems.NewMin()
	cmp := pr.Cmp()
	states := make([]int, 24)
	for i := range states {
		states[i] = rng.Intn(50)
	}
	for _, p := range []int{1, 3, 8} {
		sh := NewShards(cmp, states, p)
		tr := ms.NewTracker(cmp, states)
		monSharded := NewMonitor[int](pr, sh.View(), 0)
		monPlain := NewMonitor[int](pr, tr.View(), 0)
		work := append([]int(nil), states...)
		for round := 0; round < 8; round++ {
			// A valid D-step: a random pair adopts its minimum.
			a, b := rng.Intn(len(work)), rng.Intn(len(work))
			if a != b && work[a] != work[b] {
				m := min(work[a], work[b])
				sh.Stage(a, work[a], m)
				sh.Stage(b, work[b], m)
				tr.Replace([]int{work[a], work[b]}, []int{m, m})
				work[a], work[b] = m, m
				sh.Flush(pool)
			}
			hS := monSharded.ObserveRoundSharded(round, sh.View(), sh, pool)
			hP := monPlain.ObserveRound(round, tr.View())
			if hS != hP {
				t.Fatalf("p=%d round %d: sharded h %g != plain h %g", p, round, hS, hP)
			}
		}
		if len(monSharded.Violations()) != 0 || len(monPlain.Violations()) != 0 {
			t.Fatalf("p=%d: violations sharded=%v plain=%v", p,
				monSharded.Violations(), monPlain.Violations())
		}
	}
}

// TestObserveRoundShardedDetectsViolation: breaking conservation in one
// shard must be caught by the reduced check.
func TestObserveRoundShardedDetectsViolation(t *testing.T) {
	pool := NewPool(1, 1)
	defer pool.Close()
	pr := problems.NewMin()
	states := []int{4, 7, 2, 9, 5, 1}
	sh := NewShards(pr.Cmp(), states, 3)
	mon := NewMonitor[int](pr, sh.View(), 0)
	sh.Stage(2, 2, 3) // losing the value 2 changes the global minimum: f(S) ≠ S*
	sh.Flush(pool)
	mon.ObserveRoundSharded(0, sh.View(), sh, pool)
	if len(mon.Violations()) == 0 {
		t.Fatal("conservation violation not detected through sharded reduction")
	}
}

// secondSmallestProblem overrides Min's f with the §4.3 negative example:
// idempotent but NOT super-idempotent (and therefore unmarked).
type secondSmallestProblem struct{ *problems.Min }

func (secondSmallestProblem) F() core.Function[int] { return problems.SecondSmallestF() }

// TestObserveRoundShardedUnmarkedFallsBack: for a function without the
// super-idempotence marker, the sharded observation must fall back to
// evaluating f on the merged global snapshot — the partial-image
// reduction f(f(S_1) ∪ f(S_2)) is simply wrong for such f and would
// report a spurious conservation violation here (S = {1,2,3} split
// {1,2} | {3}: f(f({1,2}) ∪ f({3})) = f({2,2,3}) = {3,3,3} ≠ f(S) =
// {2,2,2}), so verdicts would depend on the state layout.
func TestObserveRoundShardedUnmarkedFallsBack(t *testing.T) {
	pool := NewPool(1, 1)
	defer pool.Close()
	p := secondSmallestProblem{problems.NewMin()}
	if core.IsSuperIdempotent(p.F()) {
		t.Fatal("second-smallest must not carry the super-idempotence marker")
	}
	states := []int{1, 2, 3}
	sh := NewShards(p.Cmp(), states, 2) // blocks {1,2} and {3}
	monSharded := NewMonitor[int](p, sh.View(), 0)
	monPlain := NewMonitor[int](p, ms.New(p.Cmp(), states...), 0)
	hS := monSharded.ObserveRoundSharded(0, sh.View(), sh, pool)
	hP := monPlain.ObserveRound(0, ms.New(p.Cmp(), states...))
	if hS != hP {
		t.Errorf("sharded h %g != plain h %g", hS, hP)
	}
	if v := monSharded.Violations(); len(v) != 0 {
		t.Errorf("layout-dependent verdict: sharded monitor reported %v on an unchanged state", v)
	}
	if v := monPlain.Violations(); len(v) != 0 {
		t.Errorf("plain monitor reported %v on an unchanged state", v)
	}
}

// TestMarkedFunctionsCarryMarker: the problems the engines run are
// super-idempotent (machine-checked by E9) and must be marked so the
// sharded reduction actually engages.
func TestMarkedFunctionsCarryMarker(t *testing.T) {
	if !core.IsSuperIdempotent(problems.MinF()) || !core.IsSuperIdempotent(problems.SumF()) ||
		!core.IsSuperIdempotent(problems.GCDF()) || !core.IsSuperIdempotent(problems.SortF()) ||
		!core.IsSuperIdempotent(problems.HullF()) || !core.IsSuperIdempotent(problems.MinPairF()) {
		t.Error("a super-idempotent problem f lost its marker")
	}
	if core.IsSuperIdempotent(problems.SecondSmallestF()) || core.IsSuperIdempotent(problems.CircumcircleNaiveF()) {
		t.Error("a non-super-idempotent f is marked")
	}
	// The marker must not strip the ApplyInto fast path.
	if _, ok := problems.MinF().(core.IntoFunction[int]); !ok {
		t.Error("marking min dropped its IntoFunction fast path")
	}
}

// TestPoolDoAllBypassesThreshold: DoAll must fan out even when the batch
// is below the pool's engagement threshold.
func TestPoolDoAllBypassesThreshold(t *testing.T) {
	pool := NewPool(4, 1000)
	defer pool.Close()
	got := make([]int, 8)
	pool.DoAll(len(got), func(_, i int) { got[i] = i + 1 })
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("item %d not executed (got %d)", i, v)
		}
	}
	// And Do must still honor the threshold (runs serially, worker 0 only).
	workers := make([]int, 8)
	pool.Do(len(workers), func(w, i int) { workers[i] = w })
	for i, w := range workers {
		if w != 0 {
			t.Fatalf("below-threshold Do used worker %d for item %d", w, i)
		}
	}
}

// TestApplyIntoFastPaths: the IntoFunction fast paths must agree with
// Apply on randomized inputs and allocate nothing once warm.
func TestApplyIntoFastPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	fns := []core.Function[int]{problems.MinF(), problems.MaxF(), problems.SumF(), problems.GCDF()}
	for _, f := range fns {
		if _, ok := f.(core.IntoFunction[int]); !ok {
			t.Errorf("%s does not implement the IntoFunction fast path", f.Name())
			continue
		}
		var buf []int
		for trial := 0; trial < 100; trial++ {
			vals := make([]int, 1+rng.Intn(10))
			for i := range vals {
				vals[i] = rng.Intn(30)
			}
			x := ms.OfInts(vals...)
			var got ms.Multiset[int]
			got, buf = core.ApplyInto(f, buf, x)
			if want := f.Apply(x); !got.Equal(want) {
				t.Fatalf("%s: ApplyInto(%v) = %v, want %v", f.Name(), x, got, want)
			}
		}
		x := ms.OfInts(3, 1, 4, 1, 5)
		allocs := testing.AllocsPerRun(100, func() {
			_, buf = core.ApplyInto(f, buf, x)
		})
		if allocs != 0 {
			t.Errorf("%s: warm ApplyInto allocated %.0f times per run", f.Name(), allocs)
		}
	}
}
