// Package engine is the shared core of the two execution engines — the
// round-based simulator (internal/sim) and the asynchronous message-passing
// runtime (internal/runtime).
//
// Both engines realize the same execution model (Chandy & Charpentier,
// ICDCS 2007, §2.1): agents transitions interleave with environment
// transitions, every agents transition must be a step of the relation D,
// and the run is judged by the same pair of global properties — the
// conservation law f(S) = S* (§3.2) and the monotone descent of the
// variant h (§3.5). Before this package existed those monitors, the
// convergence detector, and the deterministic seeding discipline were
// implemented twice and had started to diverge; sim and runtime now build
// on the primitives here:
//
//   - Monitor: conservation-law checking, variant-descent checking, and
//     D-step verification (the proof obligation "R implements D" of §3.7)
//     with the violation-reporting format both engines share;
//   - Convergence: the target S* = f(S(0)) and first-reach detection;
//   - Seeder: deterministic per-group child seeds drawn from the master
//     stream in group order (so results are independent of goroutine
//     scheduling), plus the per-agent and environment seed derivations the
//     asynchronous runtime uses;
//   - Pool: a persistent worker pool sized to GOMAXPROCS that replaces the
//     goroutine-per-group-per-round pattern, engaging only above a
//     group-count threshold so small systems run serially and
//     allocation-free.
package engine

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	ms "repro/internal/multiset"
)

// Monitor watches one run of either engine for violations of the paper's
// two global invariants and verifies individual steps against the relation
// D. It is NOT safe for concurrent use; engines observe from their
// coordinating goroutine.
type Monitor[T any] struct {
	f     core.Function[T]
	h     core.Variant[T]
	equal func(a, b ms.Multiset[T]) bool
	// hEps is the strict-decrease slack for D-step and descent checking (0
	// for exact integer variants; geometry problems pass a tolerance).
	hEps       float64
	target     ms.Multiset[T]
	lastH      float64
	violations []string
	// fBuf backs the per-round f evaluation when f provides the
	// core.IntoFunction fast path, so the conservation check allocates
	// nothing in steady state.
	fBuf []T
	// Sharded-observation scratch (see ObserveRoundSharded): per-shard f
	// images, their backing buffers, and the merger that reduces them.
	partials    []ms.Multiset[T]
	partialBufs [][]T
	partialMrg  *ms.Merger[T]
}

// NewMonitor builds a Monitor for problem p from the initial state
// multiset: the target S* = f(S(0)) is fixed here, and the variant
// baseline is h(S(0)).
func NewMonitor[T any](p core.Problem[T], initial ms.Multiset[T], hEps float64) *Monitor[T] {
	m := &Monitor[T]{}
	m.Reset(p, initial, hEps)
	return m
}

// Reset rebinds the monitor to a new run — problem p, initial state
// multiset, slack — keeping the per-round evaluation buffers (fBuf, the
// sharded partial-image scratch) warm, so a monitor reused across the
// cells of a scenario sweep re-pays none of its steady-state scratch.
// The target multiset and the violations slice are deliberately NOT
// reused: both are retained by callers through Result, so each run gets
// fresh storage for them.
func (m *Monitor[T]) Reset(p core.Problem[T], initial ms.Multiset[T], hEps float64) {
	m.f, m.h, m.equal, m.hEps = p.F(), p.H(), p.Equal, hEps
	m.target = m.f.Apply(initial)
	m.lastH = m.h.Value(initial)
	m.violations = nil
	m.partialMrg = nil // f (and hence cmp) may have changed with the problem
}

// Target returns the goal multiset S* = f(S(0)).
func (m *Monitor[T]) Target() ms.Multiset[T] { return m.target }

// ObserveRound checks the global state after a round: the conservation law
// f(S) = S* and the monotone descent of h relative to the previous
// observation. It returns the current h value. f is evaluated through the
// core.ApplyInto fast path into a monitor-owned buffer, so for functions
// that provide it the check allocates nothing.
func (m *Monitor[T]) ObserveRound(round int, now ms.Multiset[T]) float64 {
	var fx ms.Multiset[T]
	fx, m.fBuf = core.ApplyInto(m.f, m.fBuf, now)
	return m.judge(round, fx, now)
}

// judge is the verdict tail shared by ObserveRound and
// ObserveRoundSharded: the conservation verdict on the (already
// evaluated) f image fx, and the descent check of h on the global state —
// one copy, so the sharded and unsharded monitors cannot drift apart in
// message format or slack handling.
func (m *Monitor[T]) judge(round int, fx, global ms.Multiset[T]) float64 {
	if !m.equal(fx, m.target) {
		m.violations = append(m.violations,
			fmt.Sprintf("round %d: conservation law violated: f(S) ≠ S*", round))
	}
	nowH := m.h.Value(global)
	if nowH > m.lastH+m.hEps {
		m.violations = append(m.violations,
			fmt.Sprintf("round %d: variant increased %g → %g", round, m.lastH, nowH))
	}
	m.lastH = nowH
	return nowH
}

// ObserveQuiescence checks the conservation law and the net variant
// descent once, against the final state of a run whose intermediate states
// are not observable (the asynchronous runtime: the global multiset passes
// through transient states while a pair exchange is in flight, so the
// invariants are asserted at quiescence).
func (m *Monitor[T]) ObserveQuiescence(final ms.Multiset[T]) {
	var fx ms.Multiset[T]
	fx, m.fBuf = core.ApplyInto(m.f, m.fBuf, final)
	if !m.equal(fx, m.target) {
		m.violations = append(m.violations,
			"quiescence: conservation law violated: f(S) ≠ S*")
	}
	if nowH := m.h.Value(final); nowH > m.lastH+m.hEps {
		m.violations = append(m.violations,
			fmt.Sprintf("quiescence: variant increased %g → %g", m.lastH, nowH))
	}
}

// AdmitJoin extends the conservation target for a sanctioned population
// growth: target' = f(target ∪ joined) = f(f(S(0)) ∪ joined). When f is
// super-idempotent this is EXACTLY f(S(0) ∪ joined) by §3.4
// (f(f(X) ∪ Y) = f(X ∪ Y)) — the target a fresh run over the whole
// population would fix — so admitting joiners against the already-reduced
// target never masks or manufactures a violation. The variant baseline is
// NOT touched here; callers rebase it (RebaseVariant) after the join is
// applied to the state, since new input may legitimately raise h.
func (m *Monitor[T]) AdmitJoin(joined []T) {
	if len(joined) == 0 {
		return
	}
	y := ms.New(m.target.Cmp(), joined...)
	m.target = m.f.Apply(m.target.Union(y))
}

// RebaseVariant resets the variant baseline to h(now). Sanctioned
// discontinuities — a join injecting fresh input, an amnesiac rejoin
// resetting an agent to its initial state — may raise h without any agent
// taking an illegal step; callers invoke this at such rounds so the
// descent check resumes from the post-discontinuity value instead of
// reporting the jump as a violation.
func (m *Monitor[T]) RebaseVariant(now ms.Multiset[T]) { m.lastH = m.h.Value(now) }

// CheckFrozen verifies the dynamics layer's frozen-state contract: a
// crashed agent "executes no actions and does not change state", so for
// every agent in frozen (ids into the positional state array) the
// current state must equal the state recorded when the agent crashed
// (want, indexed by agent id). Any drift is an engine bug — a group or
// matching that included a supposedly excluded agent — and is recorded
// as a monitor violation like any conservation failure.
func (m *Monitor[T]) CheckFrozen(round int, cmp func(a, b T) int, frozen []int, want, states []T) {
	for _, a := range frozen {
		if cmp(want[a], states[a]) != 0 {
			m.violations = append(m.violations,
				fmt.Sprintf("round %d: frozen agent %d changed state while crashed", round, a))
		}
	}
}

// VerifyStep decides whether before → after is a step of the relation D
// under the monitor's f, h, equality, and slack — proof obligation
// "R implements D" as a runtime check.
func (m *Monitor[T]) VerifyStep(before, after ms.Multiset[T]) core.StepVerdict {
	return core.CheckDStep(m.f, m.h, m.equal, before, after, m.hEps)
}

// AddViolation records a formatted violation.
func (m *Monitor[T]) AddViolation(format string, args ...any) {
	m.violations = append(m.violations, fmt.Sprintf(format, args...))
}

// Violations returns the violations recorded so far (nil on a clean run).
func (m *Monitor[T]) Violations() []string { return m.violations }

// Convergence detects the first time a run's state multiset reaches the
// target S*.
type Convergence[T any] struct {
	equal     func(a, b ms.Multiset[T]) bool
	target    ms.Multiset[T]
	converged bool
	round     int
}

// NewConvergence builds a detector for the given target under the given
// multiset equality.
func NewConvergence[T any](equal func(a, b ms.Multiset[T]) bool, target ms.Multiset[T]) *Convergence[T] {
	return &Convergence[T]{equal: equal, target: target}
}

// Reached reports whether now equals the target, without recording
// anything — the stateless probe used by pollers.
func (c *Convergence[T]) Reached(now ms.Multiset[T]) bool { return c.equal(now, c.target) }

// Observe records the state after `rounds` rounds (or operations) and
// returns true exactly when this observation is the first to reach the
// target.
func (c *Convergence[T]) Observe(rounds int, now ms.Multiset[T]) bool {
	if c.converged || !c.equal(now, c.target) {
		return false
	}
	c.converged = true
	c.round = rounds
	return true
}

// Retarget rebinds the detector to a new target and clears any earlier
// first-reach record — the population-growth path: a join changes
// S* = f(S(0) ∪ joined), so the run must (re)reach the NEW target and
// Round reports the first reach of the final population's target.
func (c *Convergence[T]) Retarget(target ms.Multiset[T]) {
	c.target = target
	c.converged = false
	c.round = 0
}

// Converged reports whether any observation reached the target.
func (c *Convergence[T]) Converged() bool { return c.converged }

// Round returns the observation index recorded at first reach (0 when the
// target was never reached).
func (c *Convergence[T]) Round() int { return c.round }

// Seeder derives all of a run's randomness from one master seed so runs
// are reproducible bit for bit regardless of scheduling.
type Seeder struct {
	master *rand.Rand
}

// NewSeeder builds a Seeder over the master stream for the given seed.
func NewSeeder(seed int64) *Seeder {
	//lint:ignore detrand the sanctioned root: this IS the master stream every substream derives from, constructed once per run; its stdlib source is golden-pinned (swapping it re-pins every golden in the repo)
	return &Seeder{master: rand.New(rand.NewSource(seed))}
}

// Reset restarts the master stream at seed, in place. The resulting
// stream is identical to a fresh NewSeeder(seed) — rand.Rand.Seed
// rebuilds the source state deterministically — without re-allocating
// the source's ~5 KiB lagged-Fibonacci table, which matters when a warm
// engine executes thousands of sweep cells back to back.
func (s *Seeder) Reset(seed int64) { s.master.Seed(seed) }

// Master returns the master stream: environment transitions, matchings,
// and group-seed draws all consume from it in a deterministic order.
func (s *Seeder) Master() *rand.Rand { return s.master }

// GroupSeed draws the child seed for the next group in group order. Each
// group's step runs on a private stream seeded from this value, so results
// are independent of which worker executes the group and when.
func (s *Seeder) GroupSeed() int64 { return s.master.Int63() }

// AgentSeed derives the per-agent stream seed the asynchronous runtime
// gives each agent goroutine (7919 is prime, so agent streams are spread
// across the seed space).
func AgentSeed(base int64, agent int) int64 { return base + int64(agent)*7919 }

// EnvSeed derives the asynchronous runtime's environment (link-churn)
// stream seed from the run seed.
func EnvSeed(base int64) int64 { return base ^ 0x5eed }
