package engine

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Pool is a persistent worker pool for data-parallel group steps. It
// replaces the goroutine-per-group-per-round pattern: worker goroutines
// are started lazily on the first batch that meets the threshold and are
// reused for every subsequent round, so the steady-state round loop
// allocates nothing and pays no goroutine start-up cost.
//
// Below the threshold a batch runs serially on the caller's goroutine
// (worker 0) — for the small systems the experiment sweeps simulate, the
// per-group work is far cheaper than any hand-off.
//
// Engaged batches draw their extra workers from the process-wide
// worker-slot budget (AcquireSlots): when pools nest inside an already
// parallel sweep, the combined goroutine count stays capped at
// GOMAXPROCS instead of multiplying, and a batch granted no slots simply
// runs serially — results are identical either way, because work items
// carry their own seeds.
//
// Do passes each callback a stable worker index in [0, Size()) so callers
// can keep per-worker scratch (reusable rand.Rand states, buffers) without
// locking: a given worker index never runs two callbacks concurrently.
type Pool struct {
	size      int
	threshold int
	probe     *obs.Probe

	startOnce sync.Once
	tokens    chan struct{}
	batch     poolBatch
}

type poolBatch struct {
	n    int
	fn   func(worker, i int)
	next atomic.Int64
	wg   sync.WaitGroup
}

// NewPool builds a pool of size workers (≤ 0 means GOMAXPROCS) that
// engages when a batch has at least threshold items (≤ 0 means always
// engage). No goroutines are started until the first engaged batch.
func NewPool(size, threshold int) *Pool {
	if size <= 0 {
		size = runtime.GOMAXPROCS(0)
	}
	return &Pool{size: size, threshold: threshold}
}

// Size returns the number of worker slots (including the caller's slot 0).
func (p *Pool) Size() int { return p.size }

// SetThreshold replaces the engagement threshold. It is for pools that
// outlive a single run (engine.RunContext): the threshold is per-run
// configuration — sim.Options.ParallelThreshold — while the workers are
// warm state worth keeping, so a reused pool is re-thresholded instead
// of rebuilt. Must not be called concurrently with Do/DoAll.
func (p *Pool) SetThreshold(threshold int) { p.threshold = threshold }

// SetProbe attaches (or, with nil, detaches) an observability probe
// recording fan-out occupancy: engaged batches, items spanned, serial
// fallbacks, and extra worker slots granted. Like SetThreshold it is
// per-run configuration on a possibly warm pool; must not be called
// concurrently with Do/DoAll. Probes observe scheduling, never alter it.
func (p *Pool) SetProbe(probe *obs.Probe) { p.probe = probe }

// Do runs fn(worker, i) for every i in [0, n) and returns when all calls
// have finished. Calls may run concurrently across distinct worker
// indices; the caller participates as worker 0. Do must not be called
// concurrently with itself, with DoAll, or after Close.
func (p *Pool) Do(n int, fn func(worker, i int)) {
	p.run(n, fn, n >= p.threshold)
}

// DoAll is Do without the engagement threshold: the batch fans out to the
// workers whenever the pool has more than one slot, regardless of n. It
// is for batches whose per-item work is large even when n is small —
// per-shard state maintenance, where n is the shard count but each item
// repairs an entire shard. The same exclusivity rules as Do apply.
func (p *Pool) DoAll(n int, fn func(worker, i int)) {
	p.run(n, fn, true)
}

func (p *Pool) run(n int, fn func(worker, i int), engage bool) {
	if n <= 0 {
		return
	}
	extra := 0
	if p.size > 1 && engage {
		want := p.size - 1
		if want > n-1 {
			want = n - 1 // never wake more workers than items beyond the caller's
		}
		extra = AcquireSlots(want)
	}
	if p.probe != nil {
		p.probe.Add(obs.CounterPoolItems, int64(n))
		if extra == 0 {
			p.probe.Add(obs.CounterPoolSerial, 1)
		} else {
			p.probe.Add(obs.CounterPoolBatches, 1)
			p.probe.Add(obs.CounterPoolSlots, int64(extra))
		}
	}
	if extra == 0 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	// Both deferred so a panicking caller-side callback (recoverable by
	// callers; a panic on a worker goroutine kills the process anyway)
	// leaves the pool reusable and the budget exact: in-flight workers
	// finish the old batch before the panic propagates, then the grant is
	// returned. Registration order makes the Wait run first.
	defer ReleaseSlots(extra)
	p.startOnce.Do(p.start)
	b := &p.batch
	b.n = n
	b.fn = fn
	b.next.Store(0)
	b.wg.Add(extra)
	for w := 0; w < extra; w++ {
		p.tokens <- struct{}{}
	}
	defer func() {
		b.wg.Wait()
		b.fn = nil
	}()
	b.drain(0)
}

func (p *Pool) start() {
	// Workers range over a local copy of the channel: Close writes the
	// field from the owning goroutine, which must not race with workers
	// that are still starting up.
	tokens := make(chan struct{})
	p.tokens = tokens
	for w := 1; w < p.size; w++ {
		go func(worker int) {
			for range tokens {
				p.batch.drain(worker)
				p.batch.wg.Done()
			}
		}(w)
	}
}

func (b *poolBatch) drain(worker int) {
	for {
		i := int(b.next.Add(1)) - 1
		if i >= b.n {
			return
		}
		b.fn(worker, i)
	}
}

// Close stops the workers. The pool must not be used afterwards. Closing a
// pool that never engaged is a no-op.
func (p *Pool) Close() {
	p.startOnce.Do(func() { /* never started: nothing to stop */ })
	if p.tokens != nil {
		close(p.tokens)
		p.tokens = nil
	}
}
