package engine

import (
	"math/rand"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	ms "repro/internal/multiset"
	"repro/internal/problems"
)

func TestPoolCoversEveryIndexExactlyOnce(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	p := NewPool(4, 1)
	defer p.Close()
	const n = 1000
	var hits [n]atomic.Int32
	for batch := 0; batch < 10; batch++ {
		for i := range hits {
			hits[i].Store(0)
		}
		p.Do(n, func(worker, i int) {
			if worker < 0 || worker >= p.Size() {
				t.Errorf("worker %d out of range [0,%d)", worker, p.Size())
			}
			hits[i].Add(1)
		})
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("batch %d: index %d executed %d times, want 1", batch, i, got)
			}
		}
	}
}

func TestPoolRunsSeriallyBelowThreshold(t *testing.T) {
	p := NewPool(4, 100)
	defer p.Close()
	var order []int
	p.Do(10, func(worker, i int) {
		if worker != 0 {
			t.Errorf("below-threshold batch ran on worker %d, want 0", worker)
		}
		order = append(order, i)
	})
	for i, got := range order {
		if got != i {
			t.Fatalf("serial batch out of order: %v", order)
		}
	}
}

func TestPoolWorkerScratchNeverShared(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	p := NewPool(4, 1)
	defer p.Close()
	// One counter per worker slot, incremented non-atomically: the race
	// detector (tests run with -race in CI) fails this test if two
	// concurrent callbacks ever share a worker index.
	scratch := make([]int, p.Size())
	p.Do(500, func(worker, i int) { scratch[worker]++ })
	total := 0
	for _, c := range scratch {
		total += c
	}
	if total != 500 {
		t.Fatalf("scratch total = %d, want 500", total)
	}
}

func TestPoolCloseWithoutUse(t *testing.T) {
	p := NewPool(2, 1)
	p.Close() // must not panic or leak
}

func TestMonitorCleanRound(t *testing.T) {
	p := problems.NewMin()
	initial := ms.OfInts(3, 1, 2)
	m := NewMonitor[int](p, initial, 0)
	if !m.Target().Equal(ms.OfInts(1, 1, 1)) {
		t.Fatalf("target = %v, want {1, 1, 1}", m.Target())
	}
	h := m.ObserveRound(0, ms.OfInts(1, 1, 2))
	if len(m.Violations()) != 0 {
		t.Fatalf("clean round produced violations: %v", m.Violations())
	}
	if h <= 0 {
		t.Fatalf("h = %g, want positive while unconverged", h)
	}
}

func TestMonitorFlagsConservationAndDescent(t *testing.T) {
	p := problems.NewMin()
	m := NewMonitor[int](p, ms.OfInts(3, 1, 2), 0)
	m.ObserveRound(0, ms.OfInts(5, 5, 5)) // f changed AND h grew
	v := m.Violations()
	if len(v) != 2 {
		t.Fatalf("violations = %v, want conservation + variant", v)
	}
	if !strings.Contains(v[0], "round 0: conservation law violated") {
		t.Errorf("conservation message = %q", v[0])
	}
	if !strings.Contains(v[1], "round 0: variant increased") {
		t.Errorf("variant message = %q", v[1])
	}
}

func TestMonitorQuiescence(t *testing.T) {
	p := problems.NewMin()
	m := NewMonitor[int](p, ms.OfInts(3, 1, 2), 0)
	m.ObserveQuiescence(ms.OfInts(1, 1, 1))
	if len(m.Violations()) != 0 {
		t.Fatalf("clean quiescence produced violations: %v", m.Violations())
	}
	m.ObserveQuiescence(ms.OfInts(2, 2, 2))
	if len(m.Violations()) == 0 {
		t.Fatal("non-conserving quiescence not flagged")
	}
}

func TestMonitorCheckFrozen(t *testing.T) {
	p := problems.NewMin()
	m := NewMonitor[int](p, ms.OfInts(3, 1, 2), 0)
	cmp := func(a, b int) int { return a - b }
	want := []int{3, 1, 2}
	// Frozen agents whose states are untouched: clean.
	m.CheckFrozen(4, cmp, []int{0, 2}, want, []int{3, 9, 2})
	if len(m.Violations()) != 0 {
		t.Fatalf("intact frozen states flagged: %v", m.Violations())
	}
	// A frozen agent whose state drifted: violation naming agent & round.
	m.CheckFrozen(5, cmp, []int{0, 2}, want, []int{3, 9, 7})
	v := m.Violations()
	if len(v) != 1 || !strings.Contains(v[0], "round 5: frozen agent 2") {
		t.Fatalf("violations = %v, want one naming round 5 / agent 2", v)
	}
}

func TestMonitorVerifyStep(t *testing.T) {
	p := problems.NewMin()
	m := NewMonitor[int](p, ms.OfInts(3, 1, 2), 0)
	if v := m.VerifyStep(ms.OfInts(3, 1), ms.OfInts(1, 1)); !v.OK {
		t.Errorf("valid D-step rejected: %v", v)
	}
	if v := m.VerifyStep(ms.OfInts(3, 1), ms.OfInts(4, 1)); v.OK {
		t.Error("f-breaking step accepted")
	}
	m.AddViolation("group %v: %v", []int{0, 1}, "boom")
	if want := "group [0 1]: boom"; m.Violations()[0] != want {
		t.Errorf("AddViolation = %q, want %q", m.Violations()[0], want)
	}
}

func TestConvergenceFirstReach(t *testing.T) {
	eq := func(a, b ms.Multiset[int]) bool { return a.Equal(b) }
	c := NewConvergence(eq, ms.OfInts(1, 1))
	if c.Observe(0, ms.OfInts(2, 1)) || c.Converged() {
		t.Fatal("converged before reaching target")
	}
	if !c.Reached(ms.OfInts(1, 1)) {
		t.Fatal("Reached is a stateless probe and must report true")
	}
	if c.Converged() {
		t.Fatal("Reached must not record convergence")
	}
	if !c.Observe(5, ms.OfInts(1, 1)) {
		t.Fatal("first reach not reported")
	}
	if c.Observe(6, ms.OfInts(1, 1)) {
		t.Fatal("second reach reported as first")
	}
	if c.Round() != 5 {
		t.Fatalf("Round = %d, want 5", c.Round())
	}
}

func TestSeederMatchesRawStream(t *testing.T) {
	s := NewSeeder(42)
	want := rand.New(rand.NewSource(42))
	for i := 0; i < 100; i++ {
		if got, w := s.GroupSeed(), want.Int63(); got != w {
			t.Fatalf("draw %d: GroupSeed = %d, want %d", i, got, w)
		}
	}
}

func TestAgentAndEnvSeedsAreStable(t *testing.T) {
	// These derivations are part of the reproducibility contract shared
	// with the asynchronous runtime: changing them silently reseeds every
	// recorded run.
	if got := AgentSeed(10, 3); got != 10+3*7919 {
		t.Errorf("AgentSeed(10, 3) = %d", got)
	}
	if got := EnvSeed(10); got != 10^0x5eed {
		t.Errorf("EnvSeed(10) = %d", got)
	}
	seen := map[int64]bool{}
	for a := 0; a < 64; a++ {
		s := AgentSeed(7, a)
		if seen[s] {
			t.Fatalf("agent seed collision at agent %d", a)
		}
		seen[s] = true
	}
}

// TestFastRandDeterministicReseed: a Reseed must restart the stream
// exactly as a fresh FastRand with the same seed would, and distinct
// seeds must give distinct streams — the property the per-group seeding
// discipline rests on.
func TestFastRandDeterministicReseed(t *testing.T) {
	f := NewFastRand(7)
	var first [8]int64
	for i := range first {
		first[i] = f.Int63()
	}
	f.Reseed(7)
	fresh := NewFastRand(7)
	for i := range first {
		a, b := f.Int63(), fresh.Int63()
		if a != first[i] || b != first[i] {
			t.Fatalf("draw %d: reseeded=%d fresh=%d recorded=%d", i, a, b, first[i])
		}
	}
	f.Reseed(8)
	if f.Int63() == first[0] {
		t.Error("seed 8 repeats seed 7's stream")
	}
	// Float64 stays in [0,1) through the Source64 path.
	for i := 0; i < 1000; i++ {
		if v := f.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64 = %g", v)
		}
	}
}
