package engine

import (
	"repro/internal/core"
	ms "repro/internal/multiset"
	"repro/internal/obs"
)

// Shards is the sharded global-state snapshot shared by the engines: the
// positional agent state array is split into P contiguous blocks, each
// owning its own multiset.Tracker, and the global state multiset is
// reduced from the per-shard views by a P-way merge into a reusable
// buffer.
//
// The paper's conservation law is exactly the license for this layout:
// S_{B∪C} = S_B ∪ S_C holds for ANY partition of the agent multiset
// (§2.1), so maintaining shard multisets and merging them on demand is
// observationally identical to maintaining one global multiset — which
// the engine-equivalence golden tests pin bit for bit.
//
// The scalability win is twofold. Deltas are STAGED per shard over a
// whole round and each shard's tracker is repaired once per round — one
// O(k log(n/P) + n/P) merge pass per shard instead of one O(n) pass per
// group step, which is what makes 10⁶-agent rounds affordable. And the P
// repairs are independent, so Flush fans them out across the worker
// pool.
//
// Shards is not safe for concurrent use except where documented: Flush
// parallelizes internally over disjoint shards.
type Shards[T any] struct {
	cmp       ms.Cmp[T]
	blockSize int
	trackers  []*ms.Tracker[T]
	// Staged per-shard deltas for the current round, reused across rounds.
	olds, news [][]T
	// views is reusable scratch for handing the shard views to the merger.
	views  []ms.Multiset[T]
	merger *ms.Merger[T]
	probe  *obs.Probe
}

// SetProbe attaches (or, with nil, detaches) an observability probe
// recording flush/merge activity: flushes, staged deltas drained, and
// P-way view merges. Per-run configuration on a possibly warm Shards;
// survives Reset. Probes observe, they never change what is flushed.
func (s *Shards[T]) SetProbe(probe *obs.Probe) { s.probe = probe }

// NewShards builds a sharded snapshot of the given positional states
// split into p contiguous blocks (p is clamped to [1, len(states)]).
func NewShards[T any](cmp ms.Cmp[T], states []T, p int) *Shards[T] {
	n := len(states)
	if p < 1 {
		p = 1
	}
	if p > n && n > 0 {
		p = n
	}
	bs := (n + p - 1) / p
	if bs < 1 {
		bs = 1
	}
	s := &Shards[T]{
		cmp:       cmp,
		blockSize: bs,
		trackers:  make([]*ms.Tracker[T], p),
		olds:      make([][]T, p),
		news:      make([][]T, p),
		views:     make([]ms.Multiset[T], p),
		merger:    ms.NewMerger(cmp),
	}
	for i := 0; i < p; i++ {
		lo, hi := i*bs, (i+1)*bs
		if lo > n {
			lo = n
		}
		if hi > n {
			hi = n
		}
		s.trackers[i] = ms.NewTracker(cmp, states[lo:hi])
	}
	return s
}

// Reset rebinds the sharded snapshot to a fresh population split into p
// blocks, reusing the per-shard trackers, staging buffers, and merger
// whenever the shard count is unchanged; a different p (or a first use)
// rebuilds the tracker array but still reuses the merger and staging
// slices where possible. The resulting state is identical to
// NewShards(cmp, states, p) — the warm-engine contract for sweeps whose
// cells share a layout.
func (s *Shards[T]) Reset(cmp ms.Cmp[T], states []T, p int) {
	n := len(states)
	if p < 1 {
		p = 1
	}
	if p > n && n > 0 {
		p = n
	}
	bs := (n + p - 1) / p
	if bs < 1 {
		bs = 1
	}
	s.cmp = cmp
	s.blockSize = bs
	if len(s.trackers) != p {
		s.trackers = make([]*ms.Tracker[T], p)
		s.olds = make([][]T, p)
		s.news = make([][]T, p)
		s.views = make([]ms.Multiset[T], p)
	}
	if s.merger == nil {
		s.merger = ms.NewMerger(cmp)
	} else {
		s.merger.Reset(cmp)
	}
	for i := 0; i < p; i++ {
		lo, hi := i*bs, (i+1)*bs
		if lo > n {
			lo = n
		}
		if hi > n {
			hi = n
		}
		if s.trackers[i] == nil {
			s.trackers[i] = ms.NewTracker(cmp, states[lo:hi])
		} else {
			s.trackers[i].Reset(cmp, states[lo:hi])
		}
		s.olds[i] = s.olds[i][:0]
		s.news[i] = s.news[i][:0]
	}
}

// P returns the shard count.
func (s *Shards[T]) P() int { return len(s.trackers) }

// Owner returns the shard owning the given agent index. Agents appended
// by population growth (indices at or beyond P·blockSize) clamp to the
// last shard — the same grow-the-last-block rule graph.EdgePartition.Block
// uses, so state sharding and edge blocking never disagree about an
// agent's home.
func (s *Shards[T]) Owner(agent int) int {
	if sh := agent / s.blockSize; sh < len(s.trackers) {
		return sh
	}
	return len(s.trackers) - 1
}

// Append admits joining agents: their states are appended to the LAST
// shard's tracker, matching Owner's clamp for out-of-range indices. The
// shard layout (P, blockSize) is untouched — growth never rebalances
// mid-run, so per-shard draws and merge order are unchanged for every
// existing agent; rebalancing happens only when an explicit epoch calls
// Reset with the full population.
func (s *Shards[T]) Append(vals []T) {
	if len(vals) == 0 {
		return
	}
	s.trackers[len(s.trackers)-1].Append(vals)
}

// Stage records that the given agent's state changed old → new this
// round. The delta is routed to the owning shard and applied at the next
// Flush; each agent may be staged at most once per round (groups are
// disjoint), and old must be the value the shard currently tracks for the
// agent.
func (s *Shards[T]) Stage(agent int, oldV, newV T) {
	sh := s.Owner(agent)
	s.olds[sh] = append(s.olds[sh], oldV)
	s.news[sh] = append(s.news[sh], newV)
}

// Flush repairs every shard's tracker from its staged deltas and clears
// the staging buffers. The per-shard repairs are independent (disjoint
// trackers, disjoint staging), so they fan out across the pool; results
// do not depend on scheduling.
func (s *Shards[T]) Flush(pool *Pool) {
	if s.probe != nil {
		staged := 0
		for i := range s.olds {
			staged += len(s.olds[i])
		}
		s.probe.Add(obs.CounterShardFlushes, 1)
		s.probe.Add(obs.CounterStagedDeltas, int64(staged))
	}
	pool.DoAll(len(s.trackers), func(_, i int) {
		s.trackers[i].Replace(s.olds[i], s.news[i])
		s.olds[i] = s.olds[i][:0]
		s.news[i] = s.news[i][:0]
	})
}

// ShardView returns shard i's current multiset as a zero-copy view,
// invalidated by the next Flush.
func (s *Shards[T]) ShardView(i int) ms.Multiset[T] { return s.trackers[i].View() }

// View merges the shard views into the global state multiset — the
// P-way ∪ of the paper, into a buffer reused across rounds. The view is
// invalidated by the next View or Flush call.
func (s *Shards[T]) View() ms.Multiset[T] {
	if s.probe != nil {
		s.probe.Add(obs.CounterShardMerges, 1)
	}
	for i, t := range s.trackers {
		s.views[i] = t.View()
	}
	return s.merger.Union(s.views...)
}

// Len reports the tracked population size across all shards.
func (s *Shards[T]) Len() int {
	n := 0
	for _, t := range s.trackers {
		n += t.Len()
	}
	return n
}

// ObserveRoundSharded is the shard-aware reduction of ObserveRound: the
// conservation check evaluates f through per-shard partial images
// f(S_i), computed concurrently on the pool into per-shard reusable
// buffers, and reduces them at round end as f(f(S_1) ∪ … ∪ f(S_P)) —
// equal to f(S) exactly when f is super-idempotent (§3.4), which is the
// structural condition every problem this repository ships already
// satisfies (and the engine-equivalence golden tests verify the verdicts
// match the unsharded monitor bit for bit). The partial-image path is
// taken only when f carries the core.SuperIdempotentFunction marker; an
// unmarked f — a user-defined problem whose f may be merely idempotent,
// the §4.3/§4.5 negative examples — falls back to evaluating f on the
// merged global snapshot, so monitor verdicts never depend on the state
// layout. The variant h and the returned value are computed on the
// merged global view, exactly as in ObserveRound.
//
// global must be the current sh.View(); it is passed in so engines that
// already merged this round's snapshot (for convergence detection) do
// not pay for a second merge.
func (m *Monitor[T]) ObserveRoundSharded(round int, global ms.Multiset[T], sh *Shards[T], pool *Pool) float64 {
	if !core.IsSuperIdempotent(m.f) {
		return m.ObserveRound(round, global)
	}
	p := sh.P()
	if cap(m.partials) < p {
		m.partials = make([]ms.Multiset[T], p)
		m.partialBufs = make([][]T, p)
	}
	partials := m.partials[:p]
	pool.DoAll(p, func(_, i int) {
		partials[i], m.partialBufs[i] = core.ApplyInto(m.f, m.partialBufs[i], sh.ShardView(i))
	})
	var fx ms.Multiset[T]
	if p == 1 {
		// One shard: f(S_1) IS f(S); skip the (idempotent) outer apply.
		fx = partials[0]
	} else {
		if m.partialMrg == nil {
			m.partialMrg = ms.NewMerger(global.Cmp())
		}
		merged := m.partialMrg.Union(partials...)
		fx, m.fBuf = core.ApplyInto(m.f, m.fBuf, merged)
	}
	return m.judge(round, fx, global)
}
