package engine

import (
	"runtime"
	"sync"
)

// The process-wide worker-slot budget.
//
// Every source of data parallelism in this repository — the engine Pool's
// batch fan-out and the experiment harness's seed sweeps — draws its
// EXTRA goroutines from this one budget of GOMAXPROCS−1 slots (the
// calling goroutine always participates and needs no slot). Without it,
// parallel sweeps that nest sharded runs oversubscribe multiplicatively:
// GOMAXPROCS sweep workers × a GOMAXPROCS-sized pool inside each run is
// GOMAXPROCS² runnable goroutines fighting over GOMAXPROCS cores, which
// thrashes the scheduler exactly when the workload is largest.
//
// Acquisition is best-effort and non-blocking — a caller granted zero
// slots simply runs its batch serially on its own goroutine — so nesting
// can never deadlock, and because every parallel construct in the
// repository is deterministic by seeding discipline (work items carry
// their own seeds; distribution across workers is observationally
// irrelevant), the grant size affects wall-clock only, never results.
//
// The budget is re-read from GOMAXPROCS at every acquisition, so tests
// (and callers) that change GOMAXPROCS mid-process are honored.
var slotBudget struct {
	mu     sync.Mutex
	active int // slots currently granted
	peak   int // high-water mark of active, for tests/telemetry
}

// AcquireSlots grants up to want extra-worker slots (possibly zero) and
// returns the number granted. The caller must pass the grant back to
// ReleaseSlots when its parallel batch completes.
func AcquireSlots(want int) int {
	if want <= 0 {
		return 0
	}
	budget := runtime.GOMAXPROCS(0) - 1
	slotBudget.mu.Lock()
	defer slotBudget.mu.Unlock()
	grant := budget - slotBudget.active
	if grant > want {
		grant = want
	}
	if grant < 0 {
		grant = 0
	}
	slotBudget.active += grant
	if slotBudget.active > slotBudget.peak {
		slotBudget.peak = slotBudget.active
	}
	return grant
}

// ReleaseSlots returns a grant obtained from AcquireSlots.
func ReleaseSlots(grant int) {
	if grant <= 0 {
		return
	}
	slotBudget.mu.Lock()
	defer slotBudget.mu.Unlock()
	slotBudget.active -= grant
	if slotBudget.active < 0 {
		panic("engine.ReleaseSlots: more slots released than acquired")
	}
}

// SlotPeak reports the high-water mark of concurrently granted slots
// since the last ResetSlotPeak — the observable tests pin to prove that
// nested sweeps never exceed the GOMAXPROCS−1 extra-worker budget.
func SlotPeak() int {
	slotBudget.mu.Lock()
	defer slotBudget.mu.Unlock()
	return slotBudget.peak
}

// ResetSlotPeak clears the high-water mark (the current active count is
// untouched).
func ResetSlotPeak() {
	slotBudget.mu.Lock()
	defer slotBudget.mu.Unlock()
	slotBudget.peak = slotBudget.active
}
