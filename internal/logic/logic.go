// Package logic provides linear-time temporal-logic checks over recorded
// computation traces.
//
// The paper specifies dynamic distributed systems with the operators of
// Manna–Pnueli linear temporal logic: □ (henceforth), ◇ (eventually),
// □◇ (infinitely often, as in the environment assumption (2)), the derived
// "stable" and "leads-to" ( ↝ ) operators, and invariants such as the
// conservation law □(f(S) = S*). A simulator cannot observe an infinite
// computation, so this package evaluates the finite-trace approximations
// that are standard for runtime verification:
//
//   - safety operators (□, stable, invariants) are checked exactly on the
//     recorded prefix — a violation on a prefix is a violation, period;
//   - liveness operators (◇, ↝, □◇) are checked on the prefix and are
//     meaningful when the system has quiesced: a trace that ends in a
//     fixpoint state behaves like its infinite stuttering extension, which
//     is exactly how the paper's specification (3) is discharged by the
//     simulator (it runs until S = f(S(0)) persists).
//
// All checks are pure functions over a Trace[S]; they never mutate it.
package logic

// Trace is a finite recorded computation: a sequence of observed states.
type Trace[S any] []S

// Pred is a state predicate.
type Pred[S any] func(S) bool

// Always reports whether pred holds in every state of the trace (□ pred on
// the prefix). An empty trace satisfies Always vacuously.
func Always[S any](tr Trace[S], pred Pred[S]) bool {
	for _, s := range tr {
		if !pred(s) {
			return false
		}
	}
	return true
}

// FirstViolation returns the index of the first state violating pred, or
// -1 when pred holds throughout. It is Always with a diagnostic.
func FirstViolation[S any](tr Trace[S], pred Pred[S]) int {
	for i, s := range tr {
		if !pred(s) {
			return i
		}
	}
	return -1
}

// Eventually reports whether pred holds in some state of the trace (◇ pred
// on the prefix). An empty trace does not satisfy Eventually.
func Eventually[S any](tr Trace[S], pred Pred[S]) bool {
	for _, s := range tr {
		if pred(s) {
			return true
		}
	}
	return false
}

// EventuallyAlways reports ◇□ pred on the prefix: pred holds in some
// non-empty suffix of the trace. This is the shape of the paper's goal
// property (3): ◇□(S = f(S(0))).
func EventuallyAlways[S any](tr Trace[S], pred Pred[S]) bool {
	// Scan backwards: find the longest suffix on which pred holds.
	i := len(tr)
	for i > 0 && pred(tr[i-1]) {
		i--
	}
	return i < len(tr)
}

// AlwaysEventually reports the finite-trace reading of □◇ pred: pred holds
// at or after every position, i.e. pred holds in the final state and ...
// equivalently, pred holds somewhere in every suffix, which for a finite
// trace reduces to "pred holds in the last state or after every position
// where it fails there is a later position where it holds".
func AlwaysEventually[S any](tr Trace[S], pred Pred[S]) bool {
	if len(tr) == 0 {
		return true
	}
	// □◇p on a finite trace ⇔ p holds at the last index of every suffix's
	// witness ⇔ p holds at some index ≥ i for all i ⇔ p holds at the final
	// state OR ... in fact p must hold at the final state: the suffix
	// consisting of only the last state must contain a witness.
	return pred(tr[len(tr)-1])
}

// Stable reports whether pred, once true, remains true for the rest of the
// trace: □(pred ⇒ □pred). This is the paper's "stable" operator, used in
// the alternate specification (4): stable (S = f(S)).
func Stable[S any](tr Trace[S], pred Pred[S]) bool {
	seen := false
	for _, s := range tr {
		p := pred(s)
		if seen && !p {
			return false
		}
		seen = seen || p
	}
	return true
}

// StableViolation returns the index at which a previously-true pred first
// becomes false, or -1 when pred is stable on the trace.
func StableViolation[S any](tr Trace[S], pred Pred[S]) int {
	seen := false
	for i, s := range tr {
		p := pred(s)
		if seen && !p {
			return i
		}
		seen = seen || p
	}
	return -1
}

// LeadsTo reports the finite-trace reading of p ↝ q: every state satisfying
// p is followed (at that state or later) by a state satisfying q.
func LeadsTo[S any](tr Trace[S], p, q Pred[S]) bool {
	// Walk backwards tracking whether q occurs at or after each index.
	qLater := false
	for i := len(tr) - 1; i >= 0; i-- {
		if q(tr[i]) {
			qLater = true
		}
		if p(tr[i]) && !qLater {
			return false
		}
	}
	return true
}

// Monotone reports whether measure is non-increasing along the trace:
// □(h(next) ≤ h(prev)). It is the runtime check for the variant-function
// discipline of §3.5 (each agents-step is an improvement or a stutter).
func Monotone[S any](tr Trace[S], measure func(S) float64) bool {
	return MonotoneViolation(tr, measure) == -1
}

// MonotoneViolation returns the first index i > 0 where
// measure(tr[i]) > measure(tr[i-1]), or -1 when the measure never
// increases.
func MonotoneViolation[S any](tr Trace[S], measure func(S) float64) int {
	for i := 1; i < len(tr); i++ {
		if measure(tr[i]) > measure(tr[i-1]) {
			return i
		}
	}
	return -1
}

// StrictlyDecreasingOnChange reports the paper's improvement discipline:
// whenever the state changes (per eq), the measure strictly decreases; when
// the state stutters the measure is unchanged.
func StrictlyDecreasingOnChange[S any](tr Trace[S], eq func(a, b S) bool, measure func(S) float64) bool {
	for i := 1; i < len(tr); i++ {
		if eq(tr[i-1], tr[i]) {
			continue
		}
		if measure(tr[i]) >= measure(tr[i-1]) {
			return false
		}
	}
	return true
}

// Quiesced reports whether the trace ends in a run of at least k identical
// states (per eq). Simulators use it to decide that liveness operators can
// be read off the finite prefix.
func Quiesced[S any](tr Trace[S], eq func(a, b S) bool, k int) bool {
	if k <= 1 {
		return len(tr) > 0
	}
	if len(tr) < k {
		return false
	}
	last := tr[len(tr)-1]
	for i := len(tr) - k; i < len(tr)-1; i++ {
		if !eq(tr[i], last) {
			return false
		}
	}
	return true
}

// CountSatisfying returns how many states of the trace satisfy pred.
// Useful for measuring how often an environment predicate Q_e held, i.e.
// an empirical reading of the assumption □◇Q_e of (2).
func CountSatisfying[S any](tr Trace[S], pred Pred[S]) int {
	n := 0
	for _, s := range tr {
		if pred(s) {
			n++
		}
	}
	return n
}
