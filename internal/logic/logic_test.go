package logic

import (
	"testing"
	"testing/quick"
)

func ints(vals ...int) Trace[int] { return Trace[int](vals) }

func eqInt(a, b int) bool { return a == b }

func TestAlways(t *testing.T) {
	pos := func(v int) bool { return v > 0 }
	cases := []struct {
		name string
		tr   Trace[int]
		want bool
	}{
		{"all positive", ints(1, 2, 3), true},
		{"one violation", ints(1, -2, 3), false},
		{"empty vacuous", ints(), true},
		{"single ok", ints(5), true},
		{"single bad", ints(0), false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Always(c.tr, pos); got != c.want {
				t.Errorf("Always = %v, want %v", got, c.want)
			}
		})
	}
}

func TestFirstViolation(t *testing.T) {
	pos := func(v int) bool { return v > 0 }
	if got := FirstViolation(ints(1, 2, -1, -2), pos); got != 2 {
		t.Errorf("FirstViolation = %d, want 2", got)
	}
	if got := FirstViolation(ints(1, 2), pos); got != -1 {
		t.Errorf("FirstViolation = %d, want -1", got)
	}
}

func TestEventually(t *testing.T) {
	isTen := func(v int) bool { return v == 10 }
	if !Eventually(ints(1, 5, 10), isTen) {
		t.Error("Eventually missed witness")
	}
	if Eventually(ints(1, 5), isTen) {
		t.Error("Eventually found phantom witness")
	}
	if Eventually(ints(), isTen) {
		t.Error("Eventually on empty trace")
	}
}

func TestEventuallyAlways(t *testing.T) {
	isZero := func(v int) bool { return v == 0 }
	if !EventuallyAlways(ints(3, 2, 0, 0, 0), isZero) {
		t.Error("◇□ missed converged suffix")
	}
	if EventuallyAlways(ints(0, 0, 1), isZero) {
		t.Error("◇□ accepted trace ending false")
	}
	if EventuallyAlways(ints(), isZero) {
		t.Error("◇□ on empty trace")
	}
	if !EventuallyAlways(ints(0), isZero) {
		t.Error("◇□ single converged state")
	}
}

func TestAlwaysEventually(t *testing.T) {
	even := func(v int) bool { return v%2 == 0 }
	if !AlwaysEventually(ints(1, 2, 3, 4), even) {
		t.Error("□◇ rejected trace ending in witness")
	}
	if AlwaysEventually(ints(2, 4, 3), even) {
		t.Error("□◇ accepted trace ending without witness")
	}
	if !AlwaysEventually(ints(), even) {
		t.Error("□◇ empty should be vacuous")
	}
}

func TestStable(t *testing.T) {
	done := func(v int) bool { return v >= 10 }
	if !Stable(ints(1, 5, 10, 11, 12), done) {
		t.Error("stable rejected monotone trace")
	}
	if Stable(ints(1, 10, 5), done) {
		t.Error("stable accepted regression")
	}
	if !Stable(ints(1, 2, 3), done) {
		t.Error("stable should hold when pred never true")
	}
	if !Stable(ints(), done) {
		t.Error("stable on empty trace")
	}
}

func TestStableViolation(t *testing.T) {
	done := func(v int) bool { return v >= 10 }
	if got := StableViolation(ints(1, 10, 11, 4, 10), done); got != 3 {
		t.Errorf("StableViolation = %d, want 3", got)
	}
	if got := StableViolation(ints(10, 11), done); got != -1 {
		t.Errorf("StableViolation = %d, want -1", got)
	}
}

func TestLeadsTo(t *testing.T) {
	p := func(v int) bool { return v == 1 }
	q := func(v int) bool { return v == 2 }
	if !LeadsTo(ints(0, 1, 0, 2), p, q) {
		t.Error("leads-to rejected valid trace")
	}
	if LeadsTo(ints(0, 2, 1, 0), p, q) {
		t.Error("leads-to accepted p with no later q")
	}
	// p and q at the same state counts (reflexive ↝).
	both := func(v int) bool { return v == 3 }
	if !LeadsTo(ints(0, 3), both, both) {
		t.Error("leads-to should be reflexive at a state")
	}
	if !LeadsTo(ints(), p, q) {
		t.Error("leads-to on empty trace")
	}
}

func TestMonotone(t *testing.T) {
	id := func(v int) float64 { return float64(v) }
	if !Monotone(ints(5, 5, 4, 2, 2, 0), id) {
		t.Error("Monotone rejected non-increasing trace")
	}
	if got := MonotoneViolation(ints(5, 4, 6), id); got != 2 {
		t.Errorf("MonotoneViolation = %d, want 2", got)
	}
	if got := MonotoneViolation(ints(), id); got != -1 {
		t.Errorf("MonotoneViolation empty = %d", got)
	}
}

func TestStrictlyDecreasingOnChange(t *testing.T) {
	id := func(v int) float64 { return float64(v) }
	if !StrictlyDecreasingOnChange(ints(5, 5, 3, 3, 1), eqInt, id) {
		t.Error("rejected valid improvement trace")
	}
	if StrictlyDecreasingOnChange(ints(5, 6), eqInt, id) {
		t.Error("accepted increase on change")
	}
	// A change with equal measure must be rejected: the paper requires
	// strict decrease for proper group steps.
	type st struct{ id, h int }
	tr := Trace[st]{{0, 5}, {1, 5}}
	eq := func(a, b st) bool { return a == b }
	h := func(s st) float64 { return float64(s.h) }
	if StrictlyDecreasingOnChange(tr, eq, h) {
		t.Error("accepted state change with unchanged measure")
	}
}

func TestQuiesced(t *testing.T) {
	if !Quiesced(ints(1, 2, 3, 3, 3), eqInt, 3) {
		t.Error("Quiesced missed settled suffix")
	}
	if Quiesced(ints(1, 2, 3, 3), eqInt, 3) {
		t.Error("Quiesced accepted short suffix")
	}
	if Quiesced(ints(3, 3), eqInt, 3) {
		t.Error("Quiesced accepted too-short trace")
	}
	if !Quiesced(ints(9), eqInt, 1) {
		t.Error("Quiesced k=1 on non-empty trace")
	}
	if Quiesced(ints(), eqInt, 1) {
		t.Error("Quiesced on empty trace")
	}
}

func TestCountSatisfying(t *testing.T) {
	even := func(v int) bool { return v%2 == 0 }
	if got := CountSatisfying(ints(1, 2, 3, 4, 6), even); got != 3 {
		t.Errorf("CountSatisfying = %d, want 3", got)
	}
}

// --- Properties ---

// ◇□p implies the final state satisfies p.
func TestPropEventuallyAlwaysImpliesFinal(t *testing.T) {
	f := func(tr []bool) bool {
		trace := Trace[bool](tr)
		p := func(b bool) bool { return b }
		if EventuallyAlways(trace, p) {
			return len(tr) > 0 && tr[len(tr)-1]
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// □p implies ◇□p on non-empty traces, and implies stable p.
func TestPropAlwaysImpliesWeaker(t *testing.T) {
	f := func(tr []bool) bool {
		trace := Trace[bool](tr)
		p := func(b bool) bool { return b }
		if !Always(trace, p) {
			return true
		}
		if len(tr) > 0 && !EventuallyAlways(trace, p) {
			return false
		}
		return Stable(trace, p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Stable(p) and Eventually(p) together imply EventuallyAlways(p).
func TestPropStablePlusEventually(t *testing.T) {
	f := func(tr []bool) bool {
		trace := Trace[bool](tr)
		p := func(b bool) bool { return b }
		if Stable(trace, p) && Eventually(trace, p) {
			return EventuallyAlways(trace, p)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
